// End-to-end checks on the Algorithm 1 harnesses: the three task families
// train above chance at tiny scale, the vanilla -> hybrid switch happens at
// E_wu with a parameter-count drop, and the ablation orderings the paper
// reports are reproducible mechanics (full sweeps live in the benches).
#include "core/trainer.h"

#include <gtest/gtest.h>
#include <cmath>

#include "compress/compressor.h"
#include "models/resnet.h"
#include "models/vgg.h"
#include "runtime/shm_cluster.h"

namespace pf::core {
namespace {

data::SyntheticImages tiny_images() {
  data::SyntheticImages::Config dc;
  dc.num_classes = 4;
  dc.hw = 8;
  dc.train_size = 48;
  dc.test_size = 24;
  dc.augment = false;
  return data::SyntheticImages(dc);
}

VisionModelFactory resnet_factory(bool hybrid) {
  return [hybrid](Rng& rng) -> std::unique_ptr<nn::UnaryModule> {
    models::ResNetCifarConfig cfg =
        hybrid ? models::ResNetCifarConfig::pufferfish()
               : models::ResNetCifarConfig::vanilla();
    cfg.width_mult = 0.0625;
    cfg.num_classes = 4;
    return std::make_unique<models::ResNet18Cifar>(cfg, rng);
  };
}

TEST(TrainVision, VanillaLearnsAboveChance) {
  auto ds = tiny_images();
  VisionTrainConfig cfg;
  cfg.epochs = 5;
  cfg.batch = 16;
  cfg.lr = 0.05f;
  cfg.lr_milestones = {4};
  VisionResult r = train_vision(resnet_factory(false), nullptr, ds, cfg);
  EXPECT_EQ(r.epochs.size(), 5u);
  EXPECT_GT(r.final_acc, 0.3);  // chance 0.25
  EXPECT_LT(r.epochs.back().train_loss, r.epochs.front().train_loss);
  EXPECT_FALSE(r.epochs.back().low_rank_phase);
}

TEST(TrainVision, Algorithm1SwitchesAtWarmup) {
  auto ds = tiny_images();
  VisionTrainConfig cfg;
  cfg.epochs = 4;
  cfg.warmup_epochs = 2;
  cfg.batch = 16;
  VisionResult r =
      train_vision(resnet_factory(false), resnet_factory(true), ds, cfg);
  EXPECT_FALSE(r.epochs[0].low_rank_phase);
  EXPECT_FALSE(r.epochs[1].low_rank_phase);
  EXPECT_TRUE(r.epochs[2].low_rank_phase);
  EXPECT_TRUE(r.epochs[3].low_rank_phase);
  EXPECT_GT(r.svd_seconds, 0.0);
  // Final params are the hybrid's.
  Rng rng(1);
  models::ResNetCifarConfig pcfg = models::ResNetCifarConfig::pufferfish();
  pcfg.width_mult = 0.0625;
  pcfg.num_classes = 4;
  models::ResNet18Cifar hybrid(pcfg, rng);
  EXPECT_EQ(r.params, hybrid.num_params());
}

TEST(TrainVision, LowRankFromScratchWhenWarmupZero) {
  auto ds = tiny_images();
  VisionTrainConfig cfg;
  cfg.epochs = 2;
  cfg.warmup_epochs = 0;
  VisionResult r =
      train_vision(resnet_factory(false), resnet_factory(true), ds, cfg);
  EXPECT_TRUE(r.epochs[0].low_rank_phase);
  EXPECT_EQ(r.svd_seconds, 0.0);  // no SVD: trained from scratch
}

TEST(TrainVision, AmpRunsAndStaysStable) {
  auto ds = tiny_images();
  VisionTrainConfig cfg;
  cfg.epochs = 3;
  cfg.amp = true;
  VisionResult r = train_vision(resnet_factory(false), nullptr, ds, cfg);
  EXPECT_GT(r.final_acc, 0.25);
  for (const EpochRecord& e : r.epochs)
    EXPECT_TRUE(std::isfinite(e.train_loss));
}

TEST(EvaluateVision, ReportsConsistentNumbers) {
  auto ds = tiny_images();
  Rng rng(3);
  models::ResNetCifarConfig cfg;
  cfg.width_mult = 0.0625;
  cfg.num_classes = 4;
  models::ResNet18Cifar m(cfg, rng);
  EvalResult ev = evaluate_vision(m, ds, 8);
  EXPECT_GE(ev.acc, 0.0);
  EXPECT_LE(ev.acc, 1.0);
  EXPECT_GE(ev.top5, ev.acc);  // top-4 here (min(5, classes)) >= top-1
  EXPECT_GT(ev.loss, 0.0);
}

// ---- LM harness. ----

LmModelFactory lm_factory(int64_t rank) {
  return [rank](Rng& rng) {
    models::LstmLmConfig cfg = models::LstmLmConfig::tiny(rank);
    cfg.vocab = 40;
    cfg.hidden = 24;
    return std::make_unique<models::LstmLm>(cfg, rng);
  };
}

data::SyntheticCorpus tiny_corpus() {
  data::SyntheticCorpus::Config cc;
  cc.vocab = 40;
  cc.train_tokens = 3000;
  cc.valid_tokens = 600;
  cc.test_tokens = 600;
  return data::SyntheticCorpus(cc);
}

TEST(TrainLm, BeatsUniformPerplexity) {
  auto corpus = tiny_corpus();
  LmTrainConfig cfg;
  cfg.epochs = 4;
  cfg.batch = 5;
  cfg.bptt = 8;
  cfg.lr = 2.0f;
  LmResult r = train_lm(lm_factory(0), nullptr, corpus, cfg);
  EXPECT_LT(r.test_ppl, 40.0);  // uniform model = vocab size
  EXPECT_LT(r.val_ppl, 40.0);
  EXPECT_EQ(r.val_ppl_series.size(), 4u);
}

TEST(TrainLm, PufferfishSwitchesAndShrinks) {
  auto corpus = tiny_corpus();
  LmTrainConfig cfg;
  cfg.epochs = 3;
  cfg.warmup_epochs = 1;
  cfg.batch = 5;
  cfg.bptt = 8;
  cfg.lr = 2.0f;
  LmResult r = train_lm(lm_factory(0), lm_factory(6), corpus, cfg);
  EXPECT_GT(r.svd_seconds, 0.0);
  Rng rng(1);
  LmResult rv = train_lm(lm_factory(0), nullptr, corpus, cfg);
  EXPECT_LT(r.params, rv.params);
}

// ---- MT harness. ----

MtModelFactory mt_factory(int first_lowrank) {
  return [first_lowrank](Rng& rng) {
    return std::make_unique<models::TransformerMT>(
        models::TransformerConfig::tiny(first_lowrank), rng);
  };
}

data::SyntheticTranslation tiny_mt() {
  data::SyntheticTranslation::Config tc;
  tc.train_pairs = 64;
  tc.test_pairs = 16;
  tc.min_len = 3;
  tc.max_len = 6;
  return data::SyntheticTranslation(tc);
}

TEST(TrainMt, LearnsTheTransduction) {
  auto ds = tiny_mt();
  MtTrainConfig cfg;
  cfg.epochs = 8;
  cfg.batch = 8;
  MtResult r = train_mt(mt_factory(0), nullptr, ds, cfg);
  EXPECT_LT(r.val_ppl, 61.0);  // well below uniform over 61 content tokens
  EXPECT_GE(r.bleu, 0.0);
  EXPECT_LE(r.bleu, 100.0);
}

TEST(TrainMt, PufferfishPathRuns) {
  auto ds = tiny_mt();
  MtTrainConfig cfg;
  cfg.epochs = 2;
  cfg.warmup_epochs = 1;
  cfg.batch = 8;
  MtResult r = train_mt(mt_factory(0), mt_factory(2), ds, cfg);
  EXPECT_GT(r.svd_seconds, 0.0);
  EXPECT_GT(r.params, 0);
  EXPECT_TRUE(std::isfinite(r.train_ppl));
}

// ---------------- EpochBreakdown accounting ----------------

// The measured shm executor's breakdown must actually add up: every
// component is a per-worker average of disjoint wall intervals, other_s is
// the genuine remainder, and total() == wall_s to timer resolution. These
// assertions are what the bench tables (bench_fig4 measured columns) rest
// on; before worker 0's reduce time was pulled out of its comm window the
// reducer path double-counted encode/decode and hid it in the other_s clamp.
void expect_breakdown_sums_to_wall(const dist::EpochBreakdown& b) {
  EXPECT_GE(b.compute_s, 0.0);
  EXPECT_GE(b.encode_s, 0.0);
  EXPECT_GE(b.comm_s, 0.0);
  EXPECT_GE(b.decode_s, 0.0);
  EXPECT_GE(b.other_s, 0.0);
  EXPECT_GT(b.wall_s, 0.0);
  // Components are disjoint, so their sum (excluding the remainder) cannot
  // exceed the measured wall; 0.5% + 1 ms slack for timer resolution.
  const double parts = b.compute_s + b.encode_s + b.comm_s + b.decode_s;
  EXPECT_LE(parts, b.wall_s * 1.005 + 1e-3);
  // And with other_s = wall - parts, the total reproduces the wall exactly
  // (a clamped-away deficit would show up here as total > wall).
  EXPECT_NEAR(b.total(), b.wall_s, b.wall_s * 0.005 + 1e-3);
}

TEST(EpochBreakdown, ShmRingPathSumsToMeasuredWall) {
  auto ds = tiny_images();
  runtime::ShmClusterConfig cfg;
  cfg.workers = 2;
  cfg.train.epochs = 1;
  cfg.train.global_batch = 16;
  cfg.train.seed = 5;
  runtime::ShmDataParallelTrainer shm(resnet_factory(false), nullptr, cfg);
  const dist::DistEpochRecord rec = shm.train_epoch(ds, 0);
  expect_breakdown_sums_to_wall(rec.breakdown);
}

TEST(EpochBreakdown, ShmReducerPathSumsToMeasuredWall) {
  auto ds = tiny_images();
  runtime::ShmClusterConfig cfg;
  cfg.workers = 2;
  cfg.train.epochs = 1;
  cfg.train.global_batch = 16;
  cfg.train.seed = 7;
  runtime::ShmDataParallelTrainer shm(
      resnet_factory(false),
      std::make_unique<compress::PowerSgdReducer>(1, cfg.train.seed), cfg);
  const dist::DistEpochRecord rec = shm.train_epoch(ds, 0);
  expect_breakdown_sums_to_wall(rec.breakdown);
  // The reducer path actually exercised encode/decode accounting.
  EXPECT_GT(rec.breakdown.encode_s + rec.breakdown.decode_s, 0.0);
}

}  // namespace
}  // namespace pf::core
