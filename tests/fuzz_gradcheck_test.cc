// Randomized-graph gradient fuzzing: build random compositions of autograd
// ops and finite-difference-check every input. Catches interaction bugs the
// per-op checks cannot (broadcast-through-reshape, grad accumulation across
// shared subexpressions, deep mixed chains).
#include <gtest/gtest.h>

#include <cmath>

#include "gradcheck.h"
#include "tensor/rng.h"

namespace pf::ag {
namespace {

using pf::testing::gradcheck;

// Applies a random unary smooth op.
Var random_unary(Rng& rng, const Var& x) {
  switch (rng.uniform_int(5)) {
    case 0:
      return tanh(x);
    case 1:
      return sigmoid(x);
    case 2:
      return mul_scalar(x, static_cast<float>(rng.uniform(0.5, 2.0)));
    case 3:
      return add_scalar(x, static_cast<float>(rng.uniform(-1.0, 1.0)));
    default:
      return softmax(x);
  }
}

// Combines two same-shaped vars with a random smooth binary op.
Var random_binary(Rng& rng, const Var& a, const Var& b) {
  switch (rng.uniform_int(3)) {
    case 0:
      return add(a, b);
    case 1:
      return sub(a, b);
    default:
      return mul(a, b);
  }
}

class FuzzP : public ::testing::TestWithParam<int> {};

TEST_P(FuzzP, RandomElementwiseGraph) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 3);
  const int64_t r = 2 + rng.uniform_int(3);
  const int64_t c = 2 + rng.uniform_int(4);
  Tensor x0 = rng.randn(Shape{r, c});
  Tensor x1 = rng.randn(Shape{r, c});
  const uint64_t graph_seed = rng.next_u64();

  gradcheck(
      [graph_seed](const std::vector<Var>& v) {
        Rng g(graph_seed);
        std::vector<Var> pool = {v[0], v[1]};
        for (int step = 0; step < 6; ++step) {
          const Var& a =
              pool[static_cast<size_t>(g.uniform_int(
                  static_cast<int64_t>(pool.size())))];
          if (g.bernoulli(0.5)) {
            pool.push_back(random_unary(g, a));
          } else {
            const Var& b = pool[static_cast<size_t>(g.uniform_int(
                static_cast<int64_t>(pool.size())))];
            pool.push_back(random_binary(g, a, b));
          }
        }
        // Mix both inputs into the output so every leaf receives a
        // gradient regardless of which pool entries the graph sampled.
        Var anchor = add(sum_all(v[0]), sum_all(v[1]));
        return add(mean_all(mul(pool.back(), pool.back())),
                   mul_scalar(anchor, 0.05f));
      },
      {x0, x1});
}

TEST_P(FuzzP, RandomMatmulChain) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 11);
  // x (a,b) @ w1 (b,c) -> unary -> @ w2 (c,d) -> reduce.
  const int64_t a = 2 + rng.uniform_int(2);
  const int64_t b = 2 + rng.uniform_int(3);
  const int64_t c = 2 + rng.uniform_int(3);
  const int64_t d = 1 + rng.uniform_int(3);
  const uint64_t graph_seed = rng.next_u64();
  gradcheck(
      [graph_seed](const std::vector<Var>& v) {
        Rng g(graph_seed);
        Var h = matmul(v[0], v[1]);
        h = random_unary(g, h);
        h = matmul(h, v[2]);
        // Reuse an input downstream to exercise grad accumulation.
        Var side = sum_all(mul(v[1], v[1]));
        return add(mean_all(mul(h, h)), mul_scalar(side, 0.1f));
      },
      {rng.randn(Shape{a, b}), rng.randn(Shape{b, c}),
       rng.randn(Shape{c, d})});
}

TEST_P(FuzzP, RandomShapeShuffleGraph) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31337 + 29);
  // 12 elements reshaped/transposed/sliced/concatenated at random, then a
  // smooth reduction.
  Tensor x = rng.randn(Shape{12});
  const uint64_t graph_seed = rng.next_u64();
  gradcheck(
      [graph_seed](const std::vector<Var>& v) {
        Rng g(graph_seed);
        Var h = reshape(v[0], g.bernoulli(0.5) ? Shape{3, 4} : Shape{4, 3});
        h = transpose(h, {1, 0});
        const int64_t len = h->value.size(0) / 2;
        Var s1 = slice(h, 0, 0, len);
        Var s2 = slice(h, 0, h->value.size(0) - len, len);
        Var joined = concat({s1, s2}, 1);
        joined = random_unary(g, joined);
        return mean_all(mul(joined, joined));
      },
      {x});
}

// Hybrid boundary layer: a dense conv feeding a factorized conv, the exact
// composition at the K-1 boundary of a Pufferfish hybrid network. Checks
// that gradients flow correctly through the dense -> low-rank seam for both
// stride-1 and stride-2 factorized convs.
TEST_P(FuzzP, HybridBoundaryFactorizedConv) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 48611 + 17);
  const int64_t c = 2;                           // input channels
  const int64_t c1 = 2 + rng.uniform_int(2);     // dense conv out channels
  const int64_t r = 1 + rng.uniform_int(2);      // factorization rank
  const int64_t c2 = 2 + rng.uniform_int(2);     // factorized out channels
  const int64_t hw = 5 + rng.uniform_int(2);
  const int64_t stride = 1 + rng.uniform_int(2);
  gradcheck(
      [stride](const std::vector<Var>& v) {
        // Dense layer, then the LowRankConv2d forward: thin conv with u,
        // 1x1 mixing conv with v (see nn/factorized_conv).
        Var h = conv2d(v[0], v[1], 1, 1);
        h = tanh(h);
        h = conv2d(conv2d(h, v[2], stride, 1), v[3], 1, 0);
        return mean_all(mul(h, h));
      },
      {rng.randn(Shape{1, c, hw, hw}), rng.randn(Shape{c1, c, 3, 3}),
       rng.randn(Shape{r, c1, 3, 3}), rng.randn(Shape{c2, r, 1, 1})});
}

// Low-rank LSTM gates: mirrors LowRankLSTMLayer's per-gate factorized
// pre-activations (x V_ih U_ih^T + h V_hh U_hh^T), the four-way concat, the
// shared bias, and the cell update, unrolled for two timesteps so gradients
// flow through the recurrent h/c path. Checks every factor matrix, the
// bias, and the initial state.
TEST_P(FuzzP, LowRankLstmGates) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 92821 + 41);
  const int64_t b = 2, d = 2, h = 2, r = 1;
  // Leaves: x (2,b,d), h0, c0, then u_ih/v_ih/u_hh/v_hh for each of the
  // four gates, then the fused bias (4h).
  std::vector<Tensor> inputs = {rng.randn(Shape{2, b, d}),
                                rng.randn(Shape{b, h}),
                                rng.randn(Shape{b, h})};
  for (int gate = 0; gate < 4; ++gate) {
    inputs.push_back(rng.randn(Shape{h, r}));  // u_ih
    inputs.push_back(rng.randn(Shape{d, r}));  // v_ih
    inputs.push_back(rng.randn(Shape{h, r}));  // u_hh
    inputs.push_back(rng.randn(Shape{h, r}));  // v_hh
  }
  inputs.push_back(rng.randn(Shape{4 * h}));
  gradcheck(
      [b, d, h](const std::vector<Var>& v) {
        Var hs = v[1];
        Var cs = v[2];
        for (int64_t t = 0; t < 2; ++t) {
          Var xt = reshape(slice(v[0], 0, t, 1), Shape{b, d});
          std::vector<Var> parts;
          for (size_t gate = 0; gate < 4; ++gate) {
            const size_t k = 3 + gate * 4;
            Var zi = matmul_nt(matmul(xt, v[k + 1]), v[k]);
            Var zh = matmul_nt(matmul(hs, v[k + 3]), v[k + 2]);
            parts.push_back(add(zi, zh));
          }
          Var gates = add(concat(parts, 1), v[19]);
          Var gi = sigmoid(slice(gates, 1, 0 * h, h));
          Var gf = sigmoid(slice(gates, 1, 1 * h, h));
          Var gg = tanh(slice(gates, 1, 2 * h, h));
          Var go = sigmoid(slice(gates, 1, 3 * h, h));
          cs = add(mul(gf, cs), mul(gi, gg));
          hs = mul(go, tanh(cs));
        }
        return mean_all(mul(hs, hs));
      },
      inputs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzP, ::testing::Range(0, 12));

}  // namespace
}  // namespace pf::ag
