// Randomized-graph gradient fuzzing: build random compositions of autograd
// ops and finite-difference-check every input. Catches interaction bugs the
// per-op checks cannot (broadcast-through-reshape, grad accumulation across
// shared subexpressions, deep mixed chains).
#include <gtest/gtest.h>

#include <cmath>

#include "gradcheck.h"
#include "tensor/rng.h"

namespace pf::ag {
namespace {

using pf::testing::gradcheck;

// Applies a random unary smooth op.
Var random_unary(Rng& rng, const Var& x) {
  switch (rng.uniform_int(5)) {
    case 0:
      return tanh(x);
    case 1:
      return sigmoid(x);
    case 2:
      return mul_scalar(x, static_cast<float>(rng.uniform(0.5, 2.0)));
    case 3:
      return add_scalar(x, static_cast<float>(rng.uniform(-1.0, 1.0)));
    default:
      return softmax(x);
  }
}

// Combines two same-shaped vars with a random smooth binary op.
Var random_binary(Rng& rng, const Var& a, const Var& b) {
  switch (rng.uniform_int(3)) {
    case 0:
      return add(a, b);
    case 1:
      return sub(a, b);
    default:
      return mul(a, b);
  }
}

class FuzzP : public ::testing::TestWithParam<int> {};

TEST_P(FuzzP, RandomElementwiseGraph) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 3);
  const int64_t r = 2 + rng.uniform_int(3);
  const int64_t c = 2 + rng.uniform_int(4);
  Tensor x0 = rng.randn(Shape{r, c});
  Tensor x1 = rng.randn(Shape{r, c});
  const uint64_t graph_seed = rng.next_u64();

  gradcheck(
      [graph_seed](const std::vector<Var>& v) {
        Rng g(graph_seed);
        std::vector<Var> pool = {v[0], v[1]};
        for (int step = 0; step < 6; ++step) {
          const Var& a =
              pool[static_cast<size_t>(g.uniform_int(
                  static_cast<int64_t>(pool.size())))];
          if (g.bernoulli(0.5)) {
            pool.push_back(random_unary(g, a));
          } else {
            const Var& b = pool[static_cast<size_t>(g.uniform_int(
                static_cast<int64_t>(pool.size())))];
            pool.push_back(random_binary(g, a, b));
          }
        }
        // Mix both inputs into the output so every leaf receives a
        // gradient regardless of which pool entries the graph sampled.
        Var anchor = add(sum_all(v[0]), sum_all(v[1]));
        return add(mean_all(mul(pool.back(), pool.back())),
                   mul_scalar(anchor, 0.05f));
      },
      {x0, x1});
}

TEST_P(FuzzP, RandomMatmulChain) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 11);
  // x (a,b) @ w1 (b,c) -> unary -> @ w2 (c,d) -> reduce.
  const int64_t a = 2 + rng.uniform_int(2);
  const int64_t b = 2 + rng.uniform_int(3);
  const int64_t c = 2 + rng.uniform_int(3);
  const int64_t d = 1 + rng.uniform_int(3);
  const uint64_t graph_seed = rng.next_u64();
  gradcheck(
      [graph_seed](const std::vector<Var>& v) {
        Rng g(graph_seed);
        Var h = matmul(v[0], v[1]);
        h = random_unary(g, h);
        h = matmul(h, v[2]);
        // Reuse an input downstream to exercise grad accumulation.
        Var side = sum_all(mul(v[1], v[1]));
        return add(mean_all(mul(h, h)), mul_scalar(side, 0.1f));
      },
      {rng.randn(Shape{a, b}), rng.randn(Shape{b, c}),
       rng.randn(Shape{c, d})});
}

TEST_P(FuzzP, RandomShapeShuffleGraph) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31337 + 29);
  // 12 elements reshaped/transposed/sliced/concatenated at random, then a
  // smooth reduction.
  Tensor x = rng.randn(Shape{12});
  const uint64_t graph_seed = rng.next_u64();
  gradcheck(
      [graph_seed](const std::vector<Var>& v) {
        Rng g(graph_seed);
        Var h = reshape(v[0], g.bernoulli(0.5) ? Shape{3, 4} : Shape{4, 3});
        h = transpose(h, {1, 0});
        const int64_t len = h->value.size(0) / 2;
        Var s1 = slice(h, 0, 0, len);
        Var s2 = slice(h, 0, h->value.size(0) - len, len);
        Var joined = concat({s1, s2}, 1);
        joined = random_unary(g, joined);
        return mean_all(mul(joined, joined));
      },
      {x});
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzP, ::testing::Range(0, 12));

}  // namespace
}  // namespace pf::ag
