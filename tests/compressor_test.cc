#include "compress/compressor.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pf::compress {
namespace {

std::vector<Tensor> make_grads(Rng& rng, int workers, int64_t n) {
  std::vector<Tensor> out;
  for (int w = 0; w < workers; ++w) out.push_back(rng.randn(Shape{n}));
  return out;
}

TEST(Allreduce, ComputesExactMean) {
  Rng rng(1);
  auto grads = make_grads(rng, 4, 32);
  Tensor expected(Shape{32});
  for (const Tensor& g : grads) expected.add_(g, 0.25f);
  AllreduceReducer r;
  ReduceStats stats;
  Tensor agg = r.reduce(grads, {Shape{32}}, &stats);
  EXPECT_TRUE(allclose(agg, expected, 1e-5f, 1e-6f));
  EXPECT_EQ(stats.payload_bytes_per_worker, 32 * 4);
  EXPECT_EQ(stats.collective, Collective::kAllreduce);
  EXPECT_EQ(stats.n_messages, 1);
}

TEST(PowerSgd, ExactOnRankOneMatrices) {
  // A rank-1 gradient must be transmitted exactly by rank-1 PowerSGD
  // (after the first iteration aligns Q).
  Rng rng(2);
  Tensor u = rng.randn(Shape{8});
  Tensor v = rng.randn(Shape{6});
  Tensor g(Shape{8 * 6});
  for (int64_t i = 0; i < 8; ++i)
    for (int64_t j = 0; j < 6; ++j) g[i * 6 + j] = u[i] * v[j];

  PowerSgdReducer r(1, 7);
  ReduceStats stats;
  Tensor agg;
  for (int iter = 0; iter < 3; ++iter)
    agg = r.reduce({g, g}, {Shape{8, 6}}, &stats);
  EXPECT_TRUE(allclose(agg, g, 1e-2f, 1e-3f));
}

TEST(PowerSgd, OneDimRidesUncompressed) {
  Rng rng(3);
  auto grads = make_grads(rng, 2, 10);
  PowerSgdReducer r(2, 8);
  ReduceStats stats;
  Tensor agg = r.reduce(grads, {Shape{10}}, &stats);
  Tensor expected = (grads[0] + grads[1]) * 0.5f;
  EXPECT_TRUE(allclose(agg, expected, 1e-5f, 1e-6f));
  EXPECT_EQ(stats.payload_bytes_per_worker, 40);
}

TEST(PowerSgd, ErrorFeedbackRecoversConstantGradient) {
  // Feeding the SAME full-rank gradient repeatedly: with error feedback the
  // cumulative transmitted sum approaches the true gradient direction.
  Rng rng(4);
  Tensor g = rng.randn(Shape{6 * 6});
  PowerSgdReducer r(1, 9);
  Tensor cum(Shape{36});
  ReduceStats stats;
  const int iters = 60;
  for (int i = 0; i < iters; ++i)
    cum.add_(r.reduce({g}, {Shape{6, 6}}, &stats));
  cum.mul_(1.0f / iters);
  // Mean transmitted gradient approaches g (EF compensates truncation).
  EXPECT_LT(max_abs_diff(cum, g), 0.35f * g.abs_max());
}

TEST(PowerSgd, PayloadMuchSmallerThanDense) {
  Rng rng(5);
  const int64_t rows = 64, cols = 64;
  auto grads = make_grads(rng, 2, rows * cols);
  PowerSgdReducer r(2, 10);
  ReduceStats stats;
  r.reduce(grads, {Shape{rows, cols}}, &stats);
  EXPECT_EQ(stats.payload_bytes_per_worker, (64 * 2 + 64 * 2) * 4);
  EXPECT_LT(stats.payload_bytes_per_worker, rows * cols * 4 / 8);
  EXPECT_EQ(stats.collective, Collective::kAllreduce);
  EXPECT_EQ(stats.n_messages, 2);
}

TEST(PowerSgd, RankSweepImprovesApproximation) {
  Rng rng(6);
  Tensor g = rng.randn(Shape{16 * 16});
  auto err_at_rank = [&](int64_t rank) {
    PowerSgdReducer r(rank, 11);
    ReduceStats stats;
    Tensor agg;
    // A few warm iterations on the SAME gradient align Q with the top
    // singular subspace; measure the steady-state single-shot error.
    for (int i = 0; i < 4; ++i)
      agg = r.reduce({g}, {Shape{16, 16}}, &stats);
    return max_abs_diff(agg, g);
  };
  // Full rank (16) reconstructs an unstructured 16x16 gradient far better
  // than rank 1; intermediate rank sits in between on Frobenius error.
  EXPECT_LT(err_at_rank(16), 0.5f * err_at_rank(1));
}

TEST(Signum, UnanimousSignsPassThrough) {
  Tensor g1 = Tensor::from_vector({1.0f, -2.0f, 3.0f, -4.0f});
  SignumReducer r(0.0f);  // beta 0: momentum == grad
  ReduceStats stats;
  Tensor agg = r.reduce({g1, g1, g1}, {Shape{4}}, &stats);
  EXPECT_FLOAT_EQ(agg[0], 1.0f);
  EXPECT_FLOAT_EQ(agg[1], -1.0f);
  EXPECT_FLOAT_EQ(agg[2], 1.0f);
  EXPECT_FLOAT_EQ(agg[3], -1.0f);
}

TEST(Signum, MajorityVoteWins) {
  Tensor pos = Tensor::full(Shape{4}, 1.0f);
  Tensor neg = Tensor::full(Shape{4}, -1.0f);
  SignumReducer r(0.0f);
  ReduceStats stats;
  Tensor agg = r.reduce({pos, pos, neg}, {Shape{4}}, &stats);
  for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(agg[i], 1.0f);
}

TEST(Signum, PayloadIsOneBitPerCoordinate) {
  Rng rng(7);
  auto grads = make_grads(rng, 2, 1000);
  SignumReducer r;
  ReduceStats stats;
  r.reduce(grads, {Shape{1000}}, &stats);
  EXPECT_EQ(stats.payload_bytes_per_worker, 125);
  EXPECT_EQ(stats.collective, Collective::kAllgather);
}

TEST(Signum, MomentumSmoothsSignFlips) {
  // With beta=0.9, one contrarian gradient cannot flip the sign.
  SignumReducer r(0.9f);
  ReduceStats stats;
  Tensor pos = Tensor::full(Shape{2}, 1.0f);
  for (int i = 0; i < 10; ++i) r.reduce({pos}, {Shape{2}}, &stats);
  Tensor neg = Tensor::full(Shape{2}, -1.0f);
  Tensor agg = r.reduce({neg}, {Shape{2}}, &stats);
  EXPECT_FLOAT_EQ(agg[0], 1.0f);  // momentum still positive
}

TEST(TopK, KeepsLargestMagnitudes) {
  Tensor g = Tensor::from_vector({0.1f, -5.0f, 0.2f, 4.0f, 0.05f});
  TopKReducer r(0.4);  // k = 2
  ReduceStats stats;
  Tensor agg = r.reduce({g}, {Shape{5}}, &stats);
  EXPECT_FLOAT_EQ(agg[1], -5.0f);
  EXPECT_FLOAT_EQ(agg[3], 4.0f);
  EXPECT_FLOAT_EQ(agg[0], 0.0f);
  EXPECT_EQ(stats.payload_bytes_per_worker, 2 * 8);
  EXPECT_EQ(stats.collective, Collective::kAllgather);
}

TEST(TopK, ErrorFeedbackEventuallySendsEverything) {
  // The small coordinate accumulates in the error memory until it wins.
  Tensor g = Tensor::from_vector({0.1f, 1.0f});
  TopKReducer r(0.5);  // k = 1
  ReduceStats stats;
  Tensor total(Shape{2});
  for (int i = 0; i < 30; ++i) total.add_(r.reduce({g}, {Shape{2}}, &stats));
  // Cumulative transmitted mass approximates 30 steps of both coords.
  EXPECT_NEAR(total[0] / 30.0f, 0.1f, 0.05f);
  EXPECT_NEAR(total[1] / 30.0f, 1.0f, 0.1f);
}

TEST(TopK, AveragesAcrossWorkers) {
  Tensor a = Tensor::from_vector({2.0f, 0.0f});
  Tensor b = Tensor::from_vector({0.0f, 4.0f});
  TopKReducer r(0.5);
  ReduceStats stats;
  Tensor agg = r.reduce({a, b}, {Shape{2}}, &stats);
  EXPECT_FLOAT_EQ(agg[0], 1.0f);  // (2 + 0)/2
  EXPECT_FLOAT_EQ(agg[1], 2.0f);  // (0 + 4)/2
}

TEST(BinaryQuant, PreservesRangeEndpoints) {
  // A two-valued gradient {lo, hi} is quantized exactly.
  Tensor g = Tensor::from_vector({-1.0f, 3.0f, -1.0f, 3.0f});
  BinaryQuantReducer r(3);
  ReduceStats stats;
  Tensor agg = r.reduce({g}, {Shape{4}}, &stats);
  EXPECT_TRUE(allclose(agg, g, 1e-5f, 1e-6f));
}

TEST(BinaryQuant, UnbiasedInExpectation) {
  Rng rng(8);
  Tensor g = rng.rand(Shape{64}, -1.0f, 1.0f);
  BinaryQuantReducer r(4);
  ReduceStats stats;
  Tensor mean(Shape{64});
  const int trials = 300;
  for (int i = 0; i < trials; ++i) mean.add_(r.reduce({g}, {Shape{64}}, &stats));
  mean.mul_(1.0f / trials);
  // Stochastic rounding is unbiased: E[decode] == g.
  EXPECT_LT(max_abs_diff(mean, g), 0.25f);
}

TEST(BinaryQuant, PayloadAndCollective) {
  Rng rng(9);
  auto grads = make_grads(rng, 4, 800);
  BinaryQuantReducer r(5);
  ReduceStats stats;
  r.reduce(grads, {Shape{800}}, &stats);
  EXPECT_EQ(stats.payload_bytes_per_worker, 100 + 8);
  EXPECT_EQ(stats.collective, Collective::kAllgather);
  EXPECT_GT(stats.decode_seconds, 0.0);
}

TEST(Reducers, Names) {
  EXPECT_EQ(AllreduceReducer().name(), "allreduce");
  EXPECT_EQ(PowerSgdReducer(2, 1).name(), "powersgd(r=2)");
  EXPECT_EQ(SignumReducer().name(), "signum");
  EXPECT_EQ(TopKReducer(0.1).name(), "topk");
  EXPECT_EQ(BinaryQuantReducer(1).name(), "binary-quant");
}

}  // namespace
}  // namespace pf::compress

// (appended) ATOMO spectral sampling tests.
namespace pf::compress {
namespace {

TEST(Atomo, ExactOnRankOneWithSufficientBudget) {
  Rng rng(51);
  Tensor u = rng.randn(Shape{6});
  Tensor v = rng.randn(Shape{5});
  Tensor g(Shape{30});
  for (int64_t i = 0; i < 6; ++i)
    for (int64_t j = 0; j < 5; ++j) g[i * 5 + j] = u[i] * v[j];
  AtomoReducer r(5, 3);
  ReduceStats stats;
  Tensor agg = r.reduce({g}, {Shape{6, 5}}, &stats);
  // Rank-1 gradient: the single nonzero triplet is kept w.p. 1 (p >= 1).
  EXPECT_TRUE(allclose(agg, g, 1e-2f, 1e-3f));
  EXPECT_EQ(stats.collective, Collective::kAllgather);
}

TEST(Atomo, UnbiasedInExpectation) {
  Rng rng(52);
  Tensor g = rng.randn(Shape{8 * 6});
  AtomoReducer r(2, 7);
  ReduceStats stats;
  Tensor mean(Shape{48});
  const int trials = 400;
  for (int i = 0; i < trials; ++i) mean.add_(r.reduce({g}, {Shape{8, 6}}, &stats));
  mean.mul_(1.0f / trials);
  // Importance sampling with 1/p scaling is unbiased.
  EXPECT_LT(max_abs_diff(mean, g), 0.35f * g.abs_max());
}

TEST(Atomo, EncodeCostDominatedBySvd) {
  // The whole point of the comparison: ATOMO's per-step encode includes an
  // SVD, so it must be far more expensive than top-k's encode on the same
  // gradient.
  Rng rng(53);
  Tensor g = rng.randn(Shape{128 * 128});
  AtomoReducer atomo(4, 9);
  TopKReducer topk(0.01);
  ReduceStats sa, st;
  atomo.reduce({g}, {Shape{128, 128}}, &sa);
  topk.reduce({g}, {Shape{128, 128}}, &st);
  EXPECT_GT(sa.encode_seconds, 3.0 * st.encode_seconds);
}

TEST(Atomo, OneDimRidesExactly) {
  Rng rng(54);
  Tensor a = rng.randn(Shape{16});
  Tensor b = rng.randn(Shape{16});
  AtomoReducer r(2, 11);
  ReduceStats stats;
  Tensor agg = r.reduce({a, b}, {Shape{16}}, &stats);
  Tensor expected = (a + b) * 0.5f;
  EXPECT_TRUE(allclose(agg, expected, 1e-5f, 1e-6f));
}

}  // namespace
}  // namespace pf::compress
