#include "nn/lstm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/factorize.h"
#include "tensor/matmul.h"

namespace pf::nn {
namespace {

TEST(LSTMLayer, OutputShape) {
  Rng rng(1);
  LSTMLayer lstm(6, 8, rng);
  ag::Var y = lstm.forward(ag::leaf(rng.randn(Shape{5, 3, 6})), nullptr);
  EXPECT_EQ(y->shape(), (Shape{5, 3, 8}));
}

TEST(LSTMLayer, ParamCountMatchesTable1) {
  Rng rng(2);
  const int64_t d = 10, h = 12;
  LSTMLayer lstm(d, h, rng);
  // 4(dh + h^2) weights + 4h combined bias.
  EXPECT_EQ(lstm.num_params(), 4 * (d * h + h * h) + 4 * h);
}

TEST(LSTMLayer, StateCarriesAcrossCalls) {
  Rng rng(3);
  LSTMLayer lstm(4, 5, rng);
  Tensor x = rng.randn(Shape{6, 2, 4});

  // One 6-step pass == two 3-step passes with carried state.
  ag::Var full = lstm.forward(ag::leaf(x), nullptr);

  LstmState st;
  ag::Var part1 =
      lstm.forward(ag::leaf(slice(x, 0, 0, 3)), &st);
  ag::Var part2 =
      lstm.forward(ag::leaf(slice(x, 0, 3, 3)), &st);
  Tensor joined = concat({part1->value, part2->value}, 0);
  EXPECT_TRUE(allclose(joined, full->value, 1e-4f, 1e-5f));
}

TEST(LSTMLayer, ZeroInputGivesBoundedOutput) {
  Rng rng(4);
  LSTMLayer lstm(4, 4, rng);
  ag::Var y = lstm.forward(ag::leaf(Tensor::zeros(Shape{3, 1, 4})), nullptr);
  // tanh(c) in (-1, 1) and output gate in (0, 1) => |h| < 1.
  EXPECT_LT(y->value.abs_max(), 1.0f);
}

TEST(LSTMLayer, GradientsFlowToAllParams) {
  Rng rng(5);
  LSTMLayer lstm(3, 4, rng);
  ag::Var y = lstm.forward(ag::leaf(rng.randn(Shape{4, 2, 3})), nullptr);
  ag::backward(ag::sum_all(ag::mul(y, y)));
  EXPECT_GT(lstm.w_ih->grad.norm(), 0.0f);
  EXPECT_GT(lstm.w_hh->grad.norm(), 0.0f);
  EXPECT_GT(lstm.bias->grad.norm(), 0.0f);
}

TEST(LowRankLSTM, ParamCountMatchesTable1) {
  Rng rng(6);
  const int64_t d = 10, h = 12, r = 3;
  LowRankLSTMLayer lstm(d, h, r, rng);
  // 4dr + 12hr (+ the 4h bias the paper's count keeps).
  EXPECT_EQ(lstm.num_params(), 4 * d * r + 12 * h * r + 4 * h);
}

TEST(LowRankLSTM, OutputShape) {
  Rng rng(7);
  LowRankLSTMLayer lstm(6, 8, 2, rng);
  ag::Var y = lstm.forward(ag::leaf(rng.randn(Shape{4, 3, 6})), nullptr);
  EXPECT_EQ(y->shape(), (Shape{4, 3, 8}));
}

TEST(LowRankLSTM, FullRankFactorizationReproducesVanilla) {
  // SVD at full rank is exact, so the factorized LSTM initialized from the
  // vanilla one must produce (numerically) identical outputs.
  Rng rng(8);
  const int64_t d = 6, h = 6;
  LSTMLayer vanilla(d, h, rng);
  LowRankLSTMLayer lowrank(d, h, /*rank=*/6, rng);
  Rng svd_rng(1);
  core::factorize_lstm(vanilla, lowrank, svd_rng);

  Tensor x = rng.randn(Shape{5, 2, d});
  ag::Var yv = vanilla.forward(ag::leaf(x), nullptr);
  ag::Var yl = lowrank.forward(ag::leaf(x), nullptr);
  EXPECT_TRUE(allclose(yl->value, yv->value, 1e-3f, 1e-3f));
}

TEST(LowRankLSTM, TruncatedFactorizationIsClose) {
  Rng rng(9);
  const int64_t d = 8, h = 8;
  LSTMLayer vanilla(d, h, rng);
  LowRankLSTMLayer lr6(d, h, 6, rng);
  LowRankLSTMLayer lr2(d, h, 2, rng);
  Rng r1(1), r2(2);
  core::factorize_lstm(vanilla, lr6, r1);
  core::factorize_lstm(vanilla, lr2, r2);

  Tensor x = rng.randn(Shape{4, 2, d});
  ag::Var yv = vanilla.forward(ag::leaf(x), nullptr);
  ag::Var y6 = lr6.forward(ag::leaf(x), nullptr);
  ag::Var y2 = lr2.forward(ag::leaf(x), nullptr);
  const float e6 = max_abs_diff(y6->value, yv->value);
  const float e2 = max_abs_diff(y2->value, yv->value);
  EXPECT_LE(e6, e2 + 1e-5f);  // more rank => closer
}

TEST(LowRankLSTM, GradientsFlowToAllFactors) {
  Rng rng(10);
  LowRankLSTMLayer lstm(3, 4, 2, rng);
  ag::Var y = lstm.forward(ag::leaf(rng.randn(Shape{3, 2, 3})), nullptr);
  ag::backward(ag::sum_all(ag::mul(y, y)));
  for (size_t g = 0; g < 4; ++g) {
    EXPECT_GT(lstm.u_ih[g]->grad.norm(), 0.0f) << "gate " << g;
    EXPECT_GT(lstm.v_ih[g]->grad.norm(), 0.0f) << "gate " << g;
    EXPECT_GT(lstm.u_hh[g]->grad.norm(), 0.0f) << "gate " << g;
    EXPECT_GT(lstm.v_hh[g]->grad.norm(), 0.0f) << "gate " << g;
  }
}

}  // namespace
}  // namespace pf::nn
