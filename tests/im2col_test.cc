#include "tensor/im2col.h"

#include <gtest/gtest.h>
#include <cmath>

#include "tensor/matmul.h"
#include "tensor/rng.h"

namespace pf {
namespace {

// Direct (nested-loop) convolution reference of one image.
Tensor ref_conv(const Tensor& img, const Tensor& w, const ConvGeom& g) {
  const int64_t c_out = w.size(0);
  const int64_t oh = g.out_h(), ow = g.out_w();
  Tensor out(Shape{c_out, oh, ow});
  for (int64_t co = 0; co < c_out; ++co)
    for (int64_t oy = 0; oy < oh; ++oy)
      for (int64_t ox = 0; ox < ow; ++ox) {
        double acc = 0;
        for (int64_t ci = 0; ci < g.c_in; ++ci)
          for (int64_t ky = 0; ky < g.kernel; ++ky)
            for (int64_t kx = 0; kx < g.kernel; ++kx) {
              const int64_t iy = oy * g.stride - g.pad + ky;
              const int64_t ix = ox * g.stride - g.pad + kx;
              if (iy < 0 || iy >= g.h || ix < 0 || ix >= g.w) continue;
              acc += static_cast<double>(
                         img[(ci * g.h + iy) * g.w + ix]) *
                     w[((co * g.c_in + ci) * g.kernel + ky) * g.kernel + kx];
            }
        out[(co * oh + oy) * ow + ox] = static_cast<float>(acc);
      }
  return out;
}

struct ConvCase {
  int64_t c_in, h, w, k, stride, pad;
};

class Im2ColP : public ::testing::TestWithParam<ConvCase> {};

TEST_P(Im2ColP, GemmConvMatchesDirect) {
  const auto [c_in, h, w, k, stride, pad] = GetParam();
  const ConvGeom g{c_in, h, w, k, stride, pad};
  Rng rng(c_in * 100 + h + k);
  Tensor img = rng.randn(Shape{c_in, h, w});
  const int64_t c_out = 3;
  Tensor weight = rng.randn(Shape{c_out, c_in, k, k});

  Tensor col(Shape{g.patch(), g.out_h() * g.out_w()});
  im2col(img.data(), g, col.data());
  Tensor w2d = weight.reshape(Shape{c_out, g.patch()});
  Tensor y = matmul(w2d, col).reshape(Shape{c_out, g.out_h(), g.out_w()});

  EXPECT_TRUE(allclose(y, ref_conv(img, weight, g), 1e-3f, 1e-4f));
}

TEST_P(Im2ColP, Col2ImIsAdjoint) {
  // Adjoint property: <im2col(x), y> == <x, col2im(y)> for all x, y.
  const auto [c_in, h, w, k, stride, pad] = GetParam();
  const ConvGeom g{c_in, h, w, k, stride, pad};
  Rng rng(h * 31 + k);
  Tensor x = rng.randn(Shape{c_in, h, w});
  const int64_t cols = g.out_h() * g.out_w();
  Tensor y = rng.randn(Shape{g.patch(), cols});

  Tensor cx(Shape{g.patch(), cols});
  im2col(x.data(), g, cx.data());
  double lhs = 0;
  for (int64_t i = 0; i < cx.numel(); ++i)
    lhs += static_cast<double>(cx[i]) * y[i];

  Tensor xy(Shape{c_in, h, w});
  col2im(y.data(), g, xy.data());
  double rhs = 0;
  for (int64_t i = 0; i < x.numel(); ++i)
    rhs += static_cast<double>(x[i]) * xy[i];

  EXPECT_NEAR(lhs, rhs, 1e-2 * std::max(1.0, std::fabs(lhs)));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Im2ColP,
    ::testing::Values(ConvCase{1, 5, 5, 3, 1, 1}, ConvCase{3, 8, 8, 3, 1, 1},
                      ConvCase{2, 7, 9, 3, 2, 1}, ConvCase{4, 6, 6, 1, 1, 0},
                      ConvCase{2, 10, 10, 5, 1, 2},
                      ConvCase{3, 8, 8, 3, 2, 0},
                      ConvCase{1, 4, 4, 7, 1, 3},
                      ConvCase{2, 9, 9, 1, 2, 0}));

TEST(Im2Col, GeometryHelpers) {
  ConvGeom g{3, 32, 32, 3, 1, 1};
  EXPECT_EQ(g.out_h(), 32);
  EXPECT_EQ(g.out_w(), 32);
  EXPECT_EQ(g.patch(), 27);
  ConvGeom s{64, 16, 16, 3, 2, 1};
  EXPECT_EQ(s.out_h(), 8);
  ConvGeom p{8, 7, 7, 7, 2, 3};
  EXPECT_EQ(p.out_h(), 4);
}

TEST(Im2Col, PaddingProducesZeros) {
  ConvGeom g{1, 2, 2, 3, 1, 1};
  Tensor img = Tensor::ones(Shape{1, 2, 2});
  Tensor col(Shape{g.patch(), g.out_h() * g.out_w()});
  im2col(img.data(), g, col.data());
  // Top-left output patch: the (0,0) kernel tap reads padding => zero.
  EXPECT_FLOAT_EQ(col[0], 0.0f);
  // Center taps read real pixels.
  EXPECT_FLOAT_EQ(col.at({4, 0}), 1.0f);
}

}  // namespace
}  // namespace pf
