#include <gtest/gtest.h>

#include "baselines/eb_train.h"
#include "baselines/lth.h"
#include "models/vgg.h"

namespace pf::baselines {
namespace {

data::SyntheticImages tiny_data() {
  data::SyntheticImages::Config dc;
  dc.num_classes = 4;
  dc.hw = 32;  // VGG needs >= 32 for its five pools
  dc.train_size = 32;
  dc.test_size = 16;
  dc.augment = false;
  return data::SyntheticImages(dc);
}

core::VisionModelFactory vgg_factory(double width, int64_t classes) {
  return [width, classes](Rng& rng) -> std::unique_ptr<nn::UnaryModule> {
    models::VggConfig cfg;
    cfg.width_mult = width;
    cfg.num_classes = classes;
    return std::make_unique<models::Vgg19>(cfg, rng);
  };
}

TEST(Lth, SparsitySchedule) {
  auto ds = tiny_data();
  LthConfig cfg;
  cfg.rounds = 3;
  cfg.prune_frac_per_round = 0.5;
  cfg.inner.epochs = 1;
  cfg.inner.batch = 16;
  cfg.inner.lr = 0.02f;
  auto recs = run_lth(vgg_factory(0.0625, 4), ds, cfg);
  ASSERT_EQ(recs.size(), 4u);
  EXPECT_NEAR(recs[0].sparsity, 0.0, 1e-9);
  // Each round halves the survivors: 0, 0.5, 0.75, 0.875.
  EXPECT_NEAR(recs[1].sparsity, 0.5, 0.01);
  EXPECT_NEAR(recs[2].sparsity, 0.75, 0.01);
  EXPECT_NEAR(recs[3].sparsity, 0.875, 0.01);
}

TEST(Lth, RemainingParamsDecreaseAndTimeAccumulates) {
  auto ds = tiny_data();
  LthConfig cfg;
  cfg.rounds = 2;
  cfg.inner.epochs = 1;
  cfg.inner.batch = 16;
  auto recs = run_lth(vgg_factory(0.0625, 4), ds, cfg);
  for (size_t i = 1; i < recs.size(); ++i) {
    EXPECT_LT(recs[i].remaining_params, recs[i - 1].remaining_params);
    EXPECT_GE(recs[i].cumulative_seconds, recs[i - 1].cumulative_seconds);
  }
  // Iterative pruning costs multiple full trainings: round 2 total time is
  // at least ~2x round 0's (equal-length rounds).
  EXPECT_GT(recs[2].cumulative_seconds, 1.8 * recs[0].cumulative_seconds);
}

TEST(EbTrain, FindsTicketAndPrunesChannels) {
  auto ds = tiny_data();
  models::VggConfig mcfg;
  mcfg.width_mult = 0.0625;
  mcfg.num_classes = 4;
  EbConfig cfg;
  cfg.prune_ratio = 0.3;
  cfg.max_search_epochs = 2;
  cfg.inner.epochs = 3;
  cfg.inner.batch = 16;
  EbResult r = run_eb_train(mcfg, ds, cfg);
  EXPECT_GE(r.ticket_epoch, 0);
  EXPECT_LT(r.ticket_epoch, cfg.inner.epochs);
  EXPECT_GT(r.effective_params, 0);
  EXPECT_GT(r.effective_macs, 0);
  // Pruned network must be smaller than the dense one.
  Rng rng(1);
  models::Vgg19 dense(mcfg, rng);
  EXPECT_LT(r.effective_params, dense.num_params());
}

TEST(EbTrain, HigherPruneRatioSmallerNetwork) {
  auto ds = tiny_data();
  models::VggConfig mcfg;
  mcfg.width_mult = 0.0625;
  mcfg.num_classes = 4;
  EbConfig lo;
  lo.prune_ratio = 0.3;
  lo.max_search_epochs = 1;
  lo.inner.epochs = 1;
  lo.inner.batch = 16;
  EbConfig hi = lo;
  hi.prune_ratio = 0.7;
  EbResult rl = run_eb_train(mcfg, ds, lo);
  EbResult rh = run_eb_train(mcfg, ds, hi);
  EXPECT_LT(rh.effective_params, rl.effective_params);
  EXPECT_LT(rh.effective_macs, rl.effective_macs);
}

}  // namespace
}  // namespace pf::baselines
