#include "tensor/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace pf {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 100; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformMeanVariance) {
  Rng rng(9);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sq += u * u;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.01);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, NormalScaled) {
  Rng rng(21);
  double sum = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) sum += rng.normal(3.0, 0.5);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.uniform_int(7);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, BernoulliRate) {
  Rng rng(31);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, PermutationIsValid) {
  Rng rng(11);
  auto p = rng.permutation(50);
  std::set<int64_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 49);
}

TEST(Rng, PermutationShuffles) {
  Rng rng(13);
  auto p = rng.permutation(100);
  int fixed = 0;
  for (int64_t i = 0; i < 100; ++i)
    if (p[static_cast<size_t>(i)] == i) ++fixed;
  EXPECT_LT(fixed, 15);  // expected ~1 fixed point
}

TEST(Rng, TensorFactories) {
  Rng rng(19);
  Tensor u = rng.rand(Shape{100}, -1.0f, 1.0f);
  EXPECT_GE(u.min(), -1.0f);
  EXPECT_LT(u.max(), 1.0f);
  Tensor n = rng.randn(Shape{64, 64}, 0.0f, 2.0f);
  EXPECT_NEAR(n.mean(), 0.0f, 0.15f);
}

TEST(Rng, WorkerStreamsDoNotCollide) {
  // Rng::stream(seed, worker_id) seeds the shm-cluster workers: first
  // outputs must be pairwise distinct across a wide range of worker ids,
  // and reproducible for the same (seed, id).
  std::set<uint64_t> firsts;
  for (uint64_t w = 0; w < 1024; ++w)
    firsts.insert(Rng::stream(7, w).next_u64());
  EXPECT_EQ(firsts.size(), 1024u);
  Rng a = Rng::stream(7, 3), b = Rng::stream(7, 3);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  // Adjacent seeds with the same worker id must also diverge.
  EXPECT_NE(Rng::stream(7, 3).next_u64(), Rng::stream(8, 3).next_u64());
}

TEST(Rng, WorkerStreamsAreUncorrelated) {
  // Adjacent worker ids (the exact pattern the shm cluster produces) should
  // have near-zero sample correlation between their uniform streams.
  const int n = 4000;
  for (uint64_t w = 0; w < 4; ++w) {
    Rng x = Rng::stream(123, w), y = Rng::stream(123, w + 1);
    double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
    for (int i = 0; i < n; ++i) {
      const double u = x.uniform(), v = y.uniform();
      sx += u;
      sy += v;
      sxx += u * u;
      syy += v * v;
      sxy += u * v;
    }
    const double cov = sxy / n - (sx / n) * (sy / n);
    const double vx = sxx / n - (sx / n) * (sx / n);
    const double vy = syy / n - (sy / n) * (sy / n);
    const double corr = cov / std::sqrt(vx * vy);
    EXPECT_LT(std::abs(corr), 0.06) << "workers " << w << "," << w + 1;
  }
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng base(77);
  Rng a = base.split(1), b = base.split(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
  // Splitting with the same id reproduces the stream.
  Rng a2 = base.split(1);
  Rng a3 = base.split(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a2.next_u64(), a3.next_u64());
}

}  // namespace
}  // namespace pf
