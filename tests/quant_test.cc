// src/quant tests: post-training quantization (kernels, module lifecycle,
// accuracy gate), delta-compressed variants, and the v2 checkpoint format
// (round-trips, corruption, torn writes, v0/v1 coexistence). The quantized
// forwards' thread-count determinism also runs under ctest pf_tests_threads4
// (PF_THREADS=4) via the Quant* filter entry.
#include "quant/quantize.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>
#include <vector>

#include "fault/fault.h"
#include "kernels/qmat.h"
#include "models/resnet.h"
#include "nn/serialize.h"
#include "quant/delta.h"
#include "quant/qcheckpoint.h"
#include "runtime/thread_pool.h"

namespace pf::quant {
namespace {

std::string tmp_path(const char* name) {
  // getpid(): the same test code runs concurrently in the plain binary and
  // the sanitizer ctest entries; a shared /tmp name lets one process
  // clobber the other's files mid-run.
  return std::string(::testing::TempDir()) + name + "." +
         std::to_string(::getpid());
}

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) return false;
  return std::memcmp(std::as_const(a).data(), std::as_const(b).data(),
                     static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

std::unique_ptr<nn::UnaryModule> tiny_hybrid(uint64_t seed) {
  Rng rng(seed);
  models::ResNetCifarConfig cfg;
  cfg.width_mult = 0.125;  // big enough that conv layers clear min_numel
  cfg.first_lowrank_block = 2;
  cfg.rank_ratio = 0.25;
  return std::make_unique<models::ResNet18Cifar>(cfg, rng);
}

struct ThreadGuard {
  ~ThreadGuard() { runtime::set_threads(0); }
};

// ---------------- kernels ----------------

TEST(Quant, Int8PerRowScalesBoundElementError) {
  Rng rng(1);
  Tensor w = rng.randn(Shape{7, 33});
  kernels::QuantizedMat q =
      kernels::quantize_rows(std::as_const(w).data(), 7, 33,
                             kernels::QMode::kInt8);
  ASSERT_EQ(q.rows, 7);
  ASSERT_EQ(q.cols, 33);
  ASSERT_EQ(q.scales.size(), 7u);
  for (int64_t r = 0; r < 7; ++r) {
    float maxabs = 0;
    for (int64_t c = 0; c < 33; ++c)
      maxabs = std::max(maxabs, std::abs(std::as_const(w).data()[r * 33 + c]));
    EXPECT_NEAR(q.scales[static_cast<size_t>(r)], maxabs / 127.0f, 1e-6f);
    for (int64_t c = 0; c < 33; ++c) {
      const float orig = std::as_const(w).data()[r * 33 + c];
      // Symmetric rounding: off by at most half a step.
      EXPECT_NEAR(kernels::dequant_at(q, r, c), orig,
                  q.scales[static_cast<size_t>(r)] / 2 + 1e-7f);
    }
  }
}

TEST(Quant, Int8AllZeroRowQuantizesToZero) {
  std::vector<float> w(3 * 8, 0.0f);
  w[2 * 8 + 1] = 1.0f;  // only row 2 nonzero
  kernels::QuantizedMat q =
      kernels::quantize_rows(w.data(), 3, 8, kernels::QMode::kInt8);
  EXPECT_EQ(q.scales[0], 0.0f);
  EXPECT_EQ(kernels::dequant_at(q, 0, 0), 0.0f);
  EXPECT_EQ(kernels::dequant_at(q, 1, 5), 0.0f);
  EXPECT_EQ(kernels::dequant_at(q, 2, 1), 1.0f);
}

TEST(Quant, Bf16RoundTripIsRoundToNearestEven) {
  // Values exactly representable in bf16 survive; others land on the
  // nearest bf16 (1 + 2^-9 is a tie -> rounds to even mantissa = 1.0).
  EXPECT_EQ(kernels::bf16_to_float(kernels::bf16_from_float(1.0f)), 1.0f);
  EXPECT_EQ(kernels::bf16_to_float(kernels::bf16_from_float(-2.5f)), -2.5f);
  const float tie = 1.0f + 0.001953125f / 2;  // 1 + 2^-9
  EXPECT_EQ(kernels::bf16_to_float(kernels::bf16_from_float(tie)), 1.0f);
  Rng rng(2);
  Tensor w = rng.randn(Shape{5, 17});
  kernels::QuantizedMat q = kernels::quantize_tensor(w, kernels::QMode::kBf16);
  Tensor d = kernels::dequantize(q);
  for (int64_t i = 0; i < w.numel(); ++i) {
    const float f = std::as_const(w).data()[i];
    EXPECT_EQ(std::as_const(d).data()[i],
              kernels::bf16_to_float(kernels::bf16_from_float(f)));
  }
}

// The fused/backend quantized GEMMs must be bitwise identical to
// dequantize-then-float-GEMM on the SAME backend -- that is the documented
// contract, and it makes quantized serving exactly as deterministic as
// fp32 serving.
TEST(Quant, QuantizedGemmsMatchDequantReferencePerBackend) {
  const std::string prev = kernels::backend_name();
  for (const char* name : {"scalar", "avx2"}) {
    if (!kernels::set_backend(name)) continue;  // host lacks avx2
    Rng rng(3);
    const int64_t m = 9, k = 65, n = 33;  // off the packed-panel boundaries
    Tensor x = rng.randn(Shape{m, k});
    Tensor w = rng.randn(Shape{n, k});
    for (kernels::QMode mode :
         {kernels::QMode::kInt8, kernels::QMode::kBf16}) {
      kernels::QuantizedMat q = kernels::quantize_tensor(w, mode);
      Tensor wd = kernels::dequantize(q);
      Tensor ref(Shape{m, n});
      kernels::active().gemm_nt(std::as_const(x).data(),
                                std::as_const(wd).data(), ref.data(), m, k, n);
      Tensor y = kernels::qmatmul_nt(x, q);
      EXPECT_TRUE(bitwise_equal(y, ref))
          << name << " mode " << static_cast<int>(mode);
    }
  }
  kernels::set_backend(prev.c_str());
}

TEST(Quant, ScalarAndAvx2QuantizedForwardsAgree) {
  if (!kernels::avx2_supported())
    GTEST_SKIP() << "host CPU lacks AVX2/FMA; avx2 backend unavailable";
  const std::string prev = kernels::backend_name();
  Rng rng(4);
  Tensor x = rng.randn(Shape{5, 48});
  Tensor w = rng.randn(Shape{24, 48});
  kernels::QuantizedMat q = kernels::quantize_tensor(w, kernels::QMode::kInt8);
  ASSERT_TRUE(kernels::set_backend("scalar"));
  Tensor ys = kernels::qmatmul_nt(x, q);
  ASSERT_TRUE(kernels::set_backend("avx2"));
  Tensor yv = kernels::qmatmul_nt(x, q);
  kernels::set_backend(prev.c_str());
  // Different backends reassociate; equality is numeric, not bitwise.
  EXPECT_TRUE(allclose(ys, yv, 1e-4f, 1e-5f));
}

// ---------------- module lifecycle ----------------

TEST(Quant, QuantizeCommitRollbackLifecycle) {
  auto m = tiny_hybrid(10);
  m->train(false);
  Rng xr(11);
  Tensor x = xr.randn(Shape{2, 3, 16, 16});
  ag::NoGradGuard ng;
  const Tensor y_fp32 = m->forward(ag::leaf(x))->value;

  QuantSpec spec;
  const int64_t n_q = quantize_module(*m, spec);
  ASSERT_GT(n_q, 0);
  EXPECT_GT(quantized_bytes(*m), 0);
  const Tensor y_q = m->forward(ag::leaf(x))->value;
  // int8 moves the logits a little but not far (normwise, since a random-
  // init net has no margin to speak of).
  double num = 0, den = 0;
  for (int64_t i = 0; i < y_fp32.numel(); ++i) {
    const double d = std::as_const(y_q).data()[i] -
                     std::as_const(y_fp32).data()[i];
    num += d * d;
    den += std::as_const(y_fp32).data()[i] * std::as_const(y_fp32).data()[i];
  }
  EXPECT_LT(std::sqrt(num), 0.1 * std::sqrt(den) + 1e-6);

  // Rollback restores the exact fp32 path.
  rollback(*m);
  EXPECT_EQ(quantized_bytes(*m), 0);
  EXPECT_TRUE(bitwise_equal(m->forward(ag::leaf(x))->value, y_fp32));

  // Re-quantize + commit: masters released, footprint shrinks, forward
  // still runs and matches the pre-commit quantized forward bitwise.
  quantize_module(*m, spec);
  const int64_t before = serving_bytes(*m);
  commit(*m);
  EXPECT_LT(serving_bytes(*m), before);
  EXPECT_TRUE(bitwise_equal(m->forward(ag::leaf(x))->value, y_q));

  // After commit the fp32 masters are gone: no rollback, no re-quantize.
  EXPECT_THROW(rollback(*m), std::runtime_error);
  EXPECT_THROW(quantize_module(*m, spec), std::runtime_error);
}

TEST(Quant, LayerGroupsQuantizeAtomically) {
  // Regression: low-rank layers have one big factor (U) and one small (V).
  // A per-tensor min_numel threshold used to quantize U but skip V, and the
  // forward fast path -- which checks a single slot per layer -- then
  // dereferenced the unset one. The threshold must gate whole layers.
  auto m = tiny_hybrid(12);
  m->train(false);
  QuantSpec spec;
  spec.min_numel = 1024;  // sits between the factor sizes of several layers
  quantize_module(*m, spec);
  for (const detail::Entry& e : detail::collect_entries(*m)) {
    if (!e.slot) continue;
    // Every slot of an owner group is set, or none is.
    for (const detail::Entry& o : detail::collect_entries(*m))
      if (o.slot && o.owner == e.owner)
        EXPECT_EQ(static_cast<bool>(*o.slot), static_cast<bool>(*e.slot));
  }
  Rng xr(13);
  ag::NoGradGuard ng;
  m->forward(ag::leaf(xr.randn(Shape{2, 3, 16, 16})));  // must not crash
}

TEST(Quant, QuantizedForwardIsEvalOnly) {
  auto m = tiny_hybrid(14);
  m->train(false);
  quantize_module(*m, QuantSpec{});
  Rng xr(15);
  Tensor x = xr.randn(Shape{1, 3, 16, 16});
  // Under an active tape the quantized fast path must refuse, loudly.
  EXPECT_THROW(m->forward(ag::leaf(x)), std::runtime_error);
  ag::NoGradGuard ng;
  EXPECT_NO_THROW(m->forward(ag::leaf(x)));
}

TEST(Quant, QuantizedForwardIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  auto m = tiny_hybrid(16);
  m->train(false);
  quantize_module(*m, QuantSpec{});
  commit(*m);
  Rng xr(17);
  Tensor x = xr.randn(Shape{4, 3, 16, 16});
  ag::NoGradGuard ng;
  runtime::set_threads(1);
  const Tensor y1 = m->forward(ag::leaf(x))->value;
  runtime::set_threads(4);
  const Tensor y4 = m->forward(ag::leaf(x))->value;
  EXPECT_TRUE(bitwise_equal(y1, y4));
}

TEST(Quant, GateAcceptsWithinEpsilon) {
  auto m = tiny_hybrid(18);
  m->train(false);
  // Metric insensitive to quantization: must accept, slots stay set.
  GateResult r = quantize_if(*m, QuantSpec{}, /*eps=*/0.005,
                             [](nn::Module&) { return 0.5; });
  EXPECT_TRUE(r.accepted);
  EXPECT_GT(r.quantized, 0);
  EXPECT_GT(quantized_bytes(*m), 0);
  EXPECT_LT(r.bytes_quant, r.bytes_fp32);
}

TEST(Quant, GateRejectsAndRollsBackOnAccuracyDrop) {
  auto m = tiny_hybrid(19);
  m->train(false);
  Rng xr(20);
  Tensor x = xr.randn(Shape{2, 3, 16, 16});
  ag::NoGradGuard ng;
  const Tensor y_fp32 = m->forward(ag::leaf(x))->value;
  // Eval that "measures" a big drop on the quantized pass.
  int calls = 0;
  GateResult r = quantize_if(*m, QuantSpec{}, /*eps=*/0.005,
                             [&calls](nn::Module&) {
                               return ++calls == 1 ? 0.9 : 0.7;
                             });
  EXPECT_FALSE(r.accepted);
  EXPECT_DOUBLE_EQ(r.fp32_metric, 0.9);
  EXPECT_DOUBLE_EQ(r.quant_metric, 0.7);
  // Rejected = full fp32 fallback, bitwise.
  EXPECT_EQ(quantized_bytes(*m), 0);
  EXPECT_TRUE(bitwise_equal(m->forward(ag::leaf(x))->value, y_fp32));
}

// ---------------- delta variants ----------------

TEST(Quant, DeltaRecoversLowRankFineTune) {
  // variant = base + (exactly rank-2 residual) on every big conv/linear.
  auto base = tiny_hybrid(21);
  auto variant = tiny_hybrid(22);
  const std::string path = tmp_path("delta_base.ckpt");
  nn::save_checkpoint(*base, path);
  nn::load_checkpoint(*variant, path);
  std::remove(path.c_str());
  Rng pr(23);
  for (detail::Entry& e : detail::collect_entries(*variant)) {
    if (!e.param || e.tensor->numel() < 4096 || e.tensor->dim() < 2) continue;
    const int64_t rows = e.tensor->size(0), cols = e.tensor->numel() / rows;
    Tensor u = pr.randn(Shape{rows, 2}), v = pr.randn(Shape{2, cols});
    Tensor r2(Shape{rows, cols});
    kernels::active().gemm_nn(std::as_const(u).data(), std::as_const(v).data(),
                              r2.data(), rows, 2, cols);
    r2.mul_(0.01f);
    e.tensor->add_(r2.reshape(e.tensor->shape()));
  }

  DeltaSpec spec;
  spec.energy = 0.999;
  DeltaModel d = compute_delta(*base, *variant, spec);
  ASSERT_GT(d.lowrank_entries(), 0);
  for (const DeltaEntry& e : d.entries)
    if (e.lowrank) EXPECT_LE(e.u.size(1), 3);  // rank-2 residual found

  auto rebuilt = tiny_hybrid(24);
  nn::save_checkpoint(*base, path);
  nn::load_checkpoint(*rebuilt, path);
  std::remove(path.c_str());
  apply_delta(*rebuilt, d);
  EXPECT_TRUE(allclose(variant->flat_params(), rebuilt->flat_params(), 1e-4f,
                       1e-5f));
  // And the delta is clearly smaller than the weights it reconstructs (the
  // big tensors ship as rank-2 factors; small ones stay dense).
  EXPECT_LT(d.bytes(), fp32_bytes(*variant) / 2);
}

TEST(Quant, DeltaFallsBackToDenseWhenFactorsDoNotPay) {
  // A full-rank residual on a small square matrix: rank * (rows + cols)
  // >= rows * cols, so the dense form must be chosen.
  Rng rng(25);
  nn::Linear base(32, 32, rng);
  Rng rng2(26);
  nn::Linear variant(32, 32, rng2);  // unrelated weights: full-rank residual
  DeltaSpec spec;
  spec.min_numel = 16;
  spec.energy = 0.9999;
  DeltaModel d = compute_delta(base, variant, spec);
  bool saw_weight = false;
  for (const DeltaEntry& e : d.entries)
    if (e.shape.size() == 2 && e.shape[0] == 32) {
      saw_weight = true;
      EXPECT_FALSE(e.lowrank);
      EXPECT_EQ(e.dense.numel(), 32 * 32);
    }
  EXPECT_TRUE(saw_weight);
}

TEST(Quant, DeltaRejectsMismatchedTrees) {
  auto a = tiny_hybrid(27);
  Rng rng(28);
  nn::Linear b(8, 8, rng);
  EXPECT_THROW(compute_delta(*a, b, DeltaSpec{}), std::runtime_error);
}

// ---------------- checkpoint v2 ----------------

TEST(Quant, CheckpointV2QuantizedRoundTrip) {
  for (kernels::QMode mode : {kernels::QMode::kInt8, kernels::QMode::kBf16}) {
    auto a = tiny_hybrid(30);
    a->train(false);
    QuantSpec spec;
    spec.mode = mode;
    quantize_module(*a, spec);
    Rng xr(31);
    Tensor x = xr.randn(Shape{2, 3, 16, 16});
    ag::NoGradGuard ng;
    const Tensor y_a = a->forward(ag::leaf(x))->value;

    const std::string path = tmp_path("qckpt_roundtrip.bin");
    save_quantized(*a, path);

    auto b = tiny_hybrid(32);  // different init
    b->train(false);
    load_quantized(*b, path);
    std::remove(path.c_str());
    // The loaded module is serving-only (masters released, like commit)...
    EXPECT_THROW(quantize_module(*b, spec), std::runtime_error);
    // ...and bitwise identical to the saved quantized forward.
    EXPECT_TRUE(bitwise_equal(b->forward(ag::leaf(x))->value, y_a));
  }
}

TEST(Quant, CheckpointV2RoundTripAfterCommit) {
  // Saving must also work when the fp32 masters are already gone.
  auto a = tiny_hybrid(33);
  a->train(false);
  quantize_module(*a, QuantSpec{});
  commit(*a);
  const std::string path = tmp_path("qckpt_committed.bin");
  save_quantized(*a, path);
  auto b = tiny_hybrid(34);
  b->train(false);
  load_quantized(*b, path);
  std::remove(path.c_str());
  Rng xr(35);
  Tensor x = xr.randn(Shape{1, 3, 16, 16});
  ag::NoGradGuard ng;
  EXPECT_TRUE(bitwise_equal(a->forward(ag::leaf(x))->value,
                            b->forward(ag::leaf(x))->value));
}

TEST(Quant, CheckpointV2DeltaRoundTrip) {
  auto base = tiny_hybrid(36);
  auto variant = tiny_hybrid(37);
  DeltaSpec spec;
  spec.min_numel = 256;
  spec.max_rank = 2;
  DeltaModel d = compute_delta(*base, *variant, spec);
  const std::string path = tmp_path("delta_roundtrip.bin");
  save_delta(d, path);
  DeltaModel d2 = load_delta(path);
  std::remove(path.c_str());
  ASSERT_EQ(d2.entries.size(), d.entries.size());
  EXPECT_EQ(d2.lowrank_entries(), d.lowrank_entries());
  EXPECT_EQ(d2.bytes(), d.bytes());
  // Applying the reloaded delta reproduces the variant exactly as the
  // original delta does.
  auto x1 = tiny_hybrid(38);
  auto x2 = tiny_hybrid(38);
  const std::string ck = tmp_path("delta_roundtrip_base.ckpt");
  nn::save_checkpoint(*base, ck);
  nn::load_checkpoint(*x1, ck);
  nn::load_checkpoint(*x2, ck);
  std::remove(ck.c_str());
  apply_delta(*x1, d);
  apply_delta(*x2, d2);
  EXPECT_TRUE(bitwise_equal(x1->flat_params(), x2->flat_params()));
}

TEST(Quant, CheckpointV2RejectsCorruption) {
  auto a = tiny_hybrid(39);
  quantize_module(*a, QuantSpec{});
  const std::string path = tmp_path("qckpt_corrupt.bin");
  save_quantized(*a, path);

  // Bit-flip deep in the payload: checksum must catch it.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(256, std::ios::beg);
    char byte = 0;
    f.seekg(256, std::ios::beg);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(256, std::ios::beg);
    f.write(&byte, 1);
  }
  auto b = tiny_hybrid(40);
  EXPECT_THROW(load_quantized(*b, path), std::runtime_error);

  // Truncation (torn tail) must be detected before the checksum even runs.
  save_quantized(*a, path);
  const int64_t full = file_bytes(path);
  std::filesystem::resize_file(path, static_cast<uintmax_t>(full / 2));
  EXPECT_THROW(load_quantized(*b, path), std::runtime_error);

  // Wrong artifact kind: a quantized-model file is not a delta.
  save_quantized(*a, path);
  EXPECT_THROW(load_delta(path), std::runtime_error);

  // Garbage and missing files fail loudly.
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << "not a checkpoint";
  }
  EXPECT_THROW(load_quantized(*b, path), std::runtime_error);
  EXPECT_THROW(load_quantized(*b, tmp_path("qckpt_missing.bin")),
               std::runtime_error);
  std::remove(path.c_str());
}

TEST(Quant, CheckpointV2TornWriteLeavesOldArtifactIntact) {
  auto a = tiny_hybrid(41);
  a->train(false);
  quantize_module(*a, QuantSpec{});
  const std::string path = tmp_path("qckpt_torn.bin");
  save_quantized(*a, path);
  const int64_t good_bytes = file_bytes(path);

  auto newer = tiny_hybrid(42);
  newer->train(false);
  quantize_module(*newer, QuantSpec{});
  {
    fault::ScopedWriteCrash crash(64);  // "kill -9" a few writes in
    EXPECT_THROW(save_quantized(*newer, path), fault::InjectedCrash);
  }
  // Old artifact survives the crash, byte-for-byte loadable.
  EXPECT_EQ(file_bytes(path), good_bytes);
  auto b = tiny_hybrid(43);
  b->train(false);
  EXPECT_NO_THROW(load_quantized(*b, path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  // Disarmed: the retried save succeeds.
  save_quantized(*newer, path);
  auto c = tiny_hybrid(44);
  c->train(false);
  load_quantized(*c, path);
  std::remove(path.c_str());
}

TEST(Quant, LegacyV0V1CheckpointsStillLoadAndQuantize) {
  // v2 rides alongside v0/v1: a module restored from either legacy format
  // quantizes exactly like a freshly trained one.
  for (int version : {0, 1}) {
    auto a = tiny_hybrid(45);
    const std::string path = tmp_path("qckpt_legacy.bin");
    nn::save_checkpoint(*a, path, version);
    auto b = tiny_hybrid(46);
    nn::load_checkpoint(*b, path);
    std::remove(path.c_str());
    EXPECT_TRUE(bitwise_equal(a->flat_params(), b->flat_params()));
    EXPECT_GT(quantize_module(*b, QuantSpec{}), 0);
  }
}

}  // namespace
}  // namespace pf::quant
