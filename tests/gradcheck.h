// Finite-difference gradient checking used by the autograd / layer tests.
#pragma once

#include <gtest/gtest.h>
#include <cmath>

#include <functional>
#include <vector>

#include "autograd/ops.h"

namespace pf::testing {

// f maps leaf variables to a SCALAR Var. Checks every input coordinate's
// analytic gradient against a central difference.
inline void gradcheck(
    const std::function<ag::Var(const std::vector<ag::Var>&)>& f,
    std::vector<Tensor> inputs, float eps = 1e-2f, float rtol = 3e-2f,
    float atol = 2e-3f) {
  // Analytic gradients.
  std::vector<ag::Var> leaves;
  leaves.reserve(inputs.size());
  for (Tensor& t : inputs) leaves.push_back(ag::leaf(t, true));
  ag::Var out = f(leaves);
  ASSERT_EQ(out->numel(), 1) << "gradcheck: f must return a scalar";
  ag::backward(out);

  for (size_t i = 0; i < inputs.size(); ++i) {
    ASSERT_TRUE(leaves[i]->has_grad()) << "input " << i << " got no grad";
    const Tensor& analytic = leaves[i]->grad;
    for (int64_t j = 0; j < inputs[i].numel(); ++j) {
      Tensor plus = inputs[i];
      plus[j] += eps;
      Tensor minus = inputs[i];
      minus[j] -= eps;

      auto eval = [&](const Tensor& perturbed) {
        ag::NoGradGuard ng;
        std::vector<ag::Var> ls;
        for (size_t k = 0; k < inputs.size(); ++k)
          ls.push_back(ag::leaf(k == i ? perturbed : inputs[k]));
        return f(ls)->value[0];
      };
      const float numeric = (eval(plus) - eval(minus)) / (2 * eps);
      EXPECT_NEAR(analytic[j], numeric,
                  atol + rtol * std::fabs(numeric))
          << "input " << i << " coord " << j;
    }
  }
}

}  // namespace pf::testing
