// Reference-implementation checks: recompute layer forwards with
// independent, index-by-index formulas (no shared kernels) and compare.
// These catch systematic errors a self-consistent implementation hides.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/lstm.h"
#include "nn/transformer.h"

namespace pf {
namespace {

float sig(float x) { return 1.0f / (1.0f + std::exp(-x)); }

TEST(LstmReference, SingleStepMatchesHandComputation) {
  // d = h = 2, batch 1, one timestep: compute i/f/g/o and the cell update
  // by hand from the raw weights.
  Rng rng(1);
  nn::LSTMLayer lstm(2, 2, rng);
  Tensor x = Tensor::from_vector({0.3f, -0.7f}).reshape(Shape{1, 1, 2});
  ag::Var y = lstm.forward(ag::leaf(x), nullptr);

  const Tensor& wih = lstm.w_ih->value;  // (8, 2): rows i,i,f,f? no: 4 gates x h rows
  const Tensor& whh = lstm.w_hh->value;  // (8, 2)
  const Tensor& b = lstm.bias->value;    // (8)
  // h_prev = c_prev = 0, so gates = W_ih x + b (hidden term vanishes).
  (void)whh;
  auto gate = [&](int64_t row) {
    return wih[row * 2 + 0] * 0.3f + wih[row * 2 + 1] * -0.7f + b[row];
  };
  // Gate order i, f, g, o; h = 2 rows per gate.
  for (int64_t unit = 0; unit < 2; ++unit) {
    const float i_t = sig(gate(0 + unit));
    const float g_t = std::tanh(gate(4 + unit));
    const float o_t = sig(gate(6 + unit));
    const float c_t = i_t * g_t;  // f * c_prev = 0
    const float h_t = o_t * std::tanh(c_t);
    EXPECT_NEAR(y->value[unit], h_t, 1e-5) << "unit " << unit;
  }
}

TEST(AttentionReference, SingleHeadMatchesHandComputation) {
  // dm = 2, 1 head, seq len 2, batch 1: compute QK^T/sqrt(d), softmax, and
  // the value mix by hand from the projection weights.
  Rng rng(2);
  nn::MultiHeadAttention attn(2, 1, 0.0f, 0, rng, 1);
  attn.train(false);
  Tensor x = Tensor::from_vector({0.5f, -0.2f, 0.1f, 0.8f})
                 .reshape(Shape{1, 2, 2});
  ag::Var y = attn.forward(ag::leaf(x), ag::leaf(x), ag::leaf(x), nullptr);

  // Extract the four projection matrices (Linear weight (out, in)).
  std::vector<Tensor> w;
  for (nn::Module* child : attn.children()) {
    if (child->type_name() != "Linear") continue;
    w.push_back(child->local_params()[0].var->value);
  }
  ASSERT_EQ(w.size(), 4u);  // q, k, v, o

  auto project = [&](const Tensor& m, const float* in, float* out) {
    out[0] = m[0] * in[0] + m[1] * in[1];
    out[1] = m[2] * in[0] + m[3] * in[1];
  };
  float q[2][2], k[2][2], v[2][2];
  for (int t = 0; t < 2; ++t) {
    const float* row = x.data() + t * 2;
    project(w[0], row, q[t]);
    project(w[1], row, k[t]);
    project(w[2], row, v[t]);
  }
  const float scale = 1.0f / std::sqrt(2.0f);
  for (int t = 0; t < 2; ++t) {
    const float s0 = (q[t][0] * k[0][0] + q[t][1] * k[0][1]) * scale;
    const float s1 = (q[t][0] * k[1][0] + q[t][1] * k[1][1]) * scale;
    const float m = std::max(s0, s1);
    const float e0 = std::exp(s0 - m), e1 = std::exp(s1 - m);
    const float a0 = e0 / (e0 + e1), a1 = e1 / (e0 + e1);
    const float ctx[2] = {a0 * v[0][0] + a1 * v[1][0],
                          a0 * v[0][1] + a1 * v[1][1]};
    float out[2];
    project(w[3], ctx, out);
    EXPECT_NEAR(y->value[t * 2 + 0], out[0], 1e-5) << "t=" << t;
    EXPECT_NEAR(y->value[t * 2 + 1], out[1], 1e-5) << "t=" << t;
  }
}

TEST(LayerNormReference, MatchesHandComputation) {
  Rng rng(3);
  nn::LayerNorm ln(3);
  ln.gamma->value = Tensor::from_vector({2.0f, 1.0f, 0.5f});
  ln.beta->value = Tensor::from_vector({0.1f, -0.1f, 0.0f});
  Tensor x = Tensor::from_vector({1.0f, 2.0f, 6.0f}).reshape(Shape{1, 3});
  ag::Var y = ln.forward(ag::leaf(x));
  const float mu = 3.0f;
  const float var = (4.0f + 1.0f + 9.0f) / 3.0f;
  const float inv = 1.0f / std::sqrt(var + 1e-6f);
  EXPECT_NEAR(y->value[0], 2.0f * (1.0f - mu) * inv + 0.1f, 1e-4);
  EXPECT_NEAR(y->value[1], 1.0f * (2.0f - mu) * inv - 0.1f, 1e-4);
  EXPECT_NEAR(y->value[2], 0.5f * (6.0f - mu) * inv + 0.0f, 1e-4);
}

TEST(SoftmaxCeReference, MatchesHandComputation) {
  // logits (1, 3) with target 1, label smoothing 0.3.
  Tensor logits = Tensor::from_vector({1.0f, 2.0f, 0.5f}).reshape(Shape{1, 3});
  ag::Var loss = ag::cross_entropy(ag::leaf(logits), {1}, 0.3f);
  const double e0 = std::exp(1.0 - 2.0), e1 = 1.0, e2 = std::exp(0.5 - 2.0);
  const double z = e0 + e1 + e2;
  const double p0 = e0 / z, p1 = e1 / z, p2 = e2 / z;
  const double off = 0.3 / 3.0, on = 1.0 - 0.3 + off;
  const double expected =
      -(off * std::log(p0) + on * std::log(p1) + off * std::log(p2));
  EXPECT_NEAR(loss->value[0], expected, 1e-5);
}

// Low-rank conv equals dense conv built from the composite kernel, across a
// parameter sweep of geometries.
struct LrConvCase {
  int64_t c_in, c_out, k, stride, pad, rank, hw;
};

class LowRankConvRefP : public ::testing::TestWithParam<LrConvCase> {};

TEST_P(LowRankConvRefP, EqualsDenseCompositeKernel) {
  const auto [c_in, c_out, k, stride, pad, rank, hw] = GetParam();
  Rng rng(c_in * 100 + c_out * 10 + k);
  nn::LowRankConv2d lr(c_in, c_out, k, stride, pad, rank, rng);
  // Composite dense kernel: W[o,i,ky,kx] = sum_r v[o,r] * u[r,i,ky,kx].
  Tensor composite(Shape{c_out, c_in, k, k});
  for (int64_t o = 0; o < c_out; ++o)
    for (int64_t i = 0; i < c_in; ++i)
      for (int64_t ky = 0; ky < k; ++ky)
        for (int64_t kx = 0; kx < k; ++kx) {
          double acc = 0;
          for (int64_t r = 0; r < rank; ++r)
            acc += static_cast<double>(lr.v->value[o * rank + r]) *
                   lr.u->value[((r * c_in + i) * k + ky) * k + kx];
          composite[((o * c_in + i) * k + ky) * k + kx] =
              static_cast<float>(acc);
        }
  Tensor x = rng.randn(Shape{2, c_in, hw, hw});
  ag::Var y_lr = lr.forward(ag::leaf(x));
  ag::Var y_dense =
      ag::conv2d(ag::leaf(x), ag::leaf(composite), stride, pad);
  EXPECT_TRUE(allclose(y_lr->value, y_dense->value, 1e-3f, 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, LowRankConvRefP,
    ::testing::Values(LrConvCase{2, 4, 3, 1, 1, 2, 6},
                      LrConvCase{3, 6, 3, 2, 1, 3, 7},
                      LrConvCase{4, 4, 1, 1, 0, 2, 5},
                      LrConvCase{2, 8, 5, 1, 2, 4, 8},
                      LrConvCase{8, 2, 3, 1, 1, 1, 4}));

}  // namespace
}  // namespace pf
