#include "dist/ring_sim.h"

#include <gtest/gtest.h>

#include "dist/cost_model.h"

namespace pf::dist {
namespace {

std::vector<RingLink> homogeneous() { return {RingLink{}}; }

TEST(RingSim, TrivialSingleNode) {
  RingSimResult r = simulate_ring_allreduce(1 << 20, 1, homogeneous());
  EXPECT_EQ(r.makespan_s, 0.0);
  EXPECT_EQ(r.steps, 0);
}

TEST(RingSim, AllreduceMatchesClosedForm) {
  // Bulk-synchronous homogeneous ring == the alpha-beta formula (up to the
  // ceil() on the chunk size).
  for (int p : {2, 4, 8, 16}) {
    for (int64_t bytes : {1 << 16, 25 << 20}) {
      CostModel cm;
      cm.nodes = p;
      RingSimResult sim = simulate_ring_allreduce(bytes, p, homogeneous());
      const double closed = cm.allreduce_seconds(bytes, 1);
      EXPECT_NEAR(sim.makespan_s, closed, 0.02 * closed + 1e-6)
          << "p=" << p << " bytes=" << bytes;
      EXPECT_EQ(sim.steps, 2 * (p - 1));
    }
  }
}

TEST(RingSim, AllgatherMatchesClosedForm) {
  for (int p : {2, 8, 16}) {
    const int64_t bytes = 4 << 20;
    CostModel cm;
    cm.nodes = p;
    RingSimResult sim = simulate_ring_allgather(bytes, p, homogeneous());
    const double closed = cm.allgather_seconds(bytes, 1);
    EXPECT_NEAR(sim.makespan_s, closed, 0.02 * closed + 1e-6) << "p=" << p;
  }
}

TEST(RingSim, PipelinedMatchesBulkSyncOnHomogeneousLinks) {
  const int64_t bytes = 25 << 20;
  for (int p : {4, 8}) {
    RingSimResult bulk = simulate_ring_allreduce(bytes, p, homogeneous());
    RingSimResult pipe =
        simulate_ring_allreduce_pipelined(bytes, p, homogeneous());
    EXPECT_NEAR(pipe.makespan_s, bulk.makespan_s,
                0.01 * bulk.makespan_s + 1e-9);
  }
}

TEST(RingSim, StragglerLinkDominatesBulkSync) {
  // One link at half bandwidth: every barrier round waits for it, so the
  // whole collective slows toward the straggler's rate.
  const int p = 8;
  const int64_t bytes = 25 << 20;
  std::vector<RingLink> links(static_cast<size_t>(p));
  links[3].bandwidth_bytes_per_s /= 2;
  RingSimResult slow = simulate_ring_allreduce(bytes, p, links);
  RingSimResult fast = simulate_ring_allreduce(bytes, p, homogeneous());
  EXPECT_GT(slow.makespan_s, 1.8 * fast.makespan_s);
}

TEST(RingSim, PipeliningCannotBeatTheRingBottleneck) {
  // A structural fact the event simulation verifies: on a RING every chunk
  // crosses every link, so one slow link serializes 2(p-1) chunk transfers
  // no matter how the rounds are scheduled -- pipelining does not help
  // (this is why stragglers are so painful for ring allreduce in practice).
  const int p = 8;
  const int64_t bytes = 25 << 20;
  std::vector<RingLink> links(static_cast<size_t>(p));
  links[3].bandwidth_bytes_per_s /= 2;
  RingSimResult bulk = simulate_ring_allreduce(bytes, p, links);
  RingSimResult pipe = simulate_ring_allreduce_pipelined(bytes, p, links);
  EXPECT_LE(pipe.makespan_s, bulk.makespan_s + 1e-9);
  // Both sit at the straggler bound: 2(p-1) serialized slow transfers.
  const double bound =
      2.0 * (p - 1) *
      (links[3].latency_s + static_cast<double>(bytes / p) /
                                links[3].bandwidth_bytes_per_s);
  EXPECT_NEAR(pipe.makespan_s, bound, 0.05 * bound);
}

TEST(RingSim, BytesPerLinkAccounting) {
  const int p = 4;
  const int64_t bytes = 4096;
  RingSimResult r = simulate_ring_allreduce(bytes, p, homogeneous());
  // Each link carries 2(p-1) chunks of bytes/p.
  EXPECT_EQ(r.bytes_per_link, 2 * (p - 1) * (bytes / p));
}

TEST(RingSim, LatencyTermScalesWithNodes) {
  // Tiny payload: the makespan is dominated by 2(p-1) alpha.
  const int64_t bytes = 64;
  RingSimResult p4 = simulate_ring_allreduce(bytes, 4, homogeneous());
  RingSimResult p16 = simulate_ring_allreduce(bytes, 16, homogeneous());
  EXPECT_NEAR(p16.makespan_s / p4.makespan_s, 30.0 / 6.0, 0.2);
}

}  // namespace
}  // namespace pf::dist
