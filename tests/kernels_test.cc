// pf::kernels backend tests: registry dispatch, the scalar backend's
// bitwise identity with the seed loop order, the AVX2 backend's per-op
// tolerance tier, cross-thread determinism, and the fused low-rank forward.
//
// The reference kernels below reproduce the pre-refactor accumulation
// orders (ascending-k with the zero-skip for NN/TN, the four-way split
// dot for NT) as plain serial loops. Per output element those orders are
// what the seed's blocked/parallel code produced, so "bitwise equal to
// reference" == "bitwise equal to seed".
#include "kernels/kernels.h"

#include <gtest/gtest.h>

#include <cfloat>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "autograd/ops.h"
#include "gradcheck.h"
#include "runtime/thread_pool.h"
#include "tensor/matmul.h"
#include "tensor/rng.h"
#include "trace/trace.h"

namespace pf {
namespace {

// Restores the active backend and the thread pool on scope exit, so each
// test can switch freely without leaking state into the rest of the suite.
struct BackendGuard {
  std::string prev;
  BackendGuard() : prev(kernels::backend_name()) {}
  ~BackendGuard() {
    kernels::set_backend(prev.c_str());
    runtime::set_threads(0);  // back to the PF_THREADS env default
  }
};

Tensor ref_matmul(const Tensor& a, const Tensor& b) {
  const int64_t m = a.size(0), k = a.size(1), n = b.size(1);
  Tensor c(Shape{m, n});
  const float* ad = a.data();
  const float* bd = b.data();
  float* cd = c.data();
  for (int64_t i = 0; i < m; ++i)
    for (int64_t kk = 0; kk < k; ++kk) {
      const float aval = ad[i * k + kk];
      if (aval == 0.0f) continue;
      for (int64_t j = 0; j < n; ++j) cd[i * n + j] += aval * bd[kk * n + j];
    }
  return c;
}

Tensor ref_matmul_tn(const Tensor& a, const Tensor& b) {
  const int64_t k = a.size(0), m = a.size(1), n = b.size(1);
  Tensor c(Shape{m, n});
  const float* ad = a.data();
  const float* bd = b.data();
  float* cd = c.data();
  for (int64_t i = 0; i < m; ++i)
    for (int64_t kk = 0; kk < k; ++kk) {
      const float aval = ad[kk * m + i];
      if (aval == 0.0f) continue;
      for (int64_t j = 0; j < n; ++j) cd[i * n + j] += aval * bd[kk * n + j];
    }
  return c;
}

Tensor ref_matmul_nt(const Tensor& a, const Tensor& b) {
  const int64_t m = a.size(0), k = a.size(1), n = b.size(0);
  Tensor c(Shape{m, n});
  const float* ad = a.data();
  const float* bd = b.data();
  float* cd = c.data();
  for (int64_t i = 0; i < m; ++i)
    for (int64_t j = 0; j < n; ++j) {
      const float* arow = ad + i * k;
      const float* brow = bd + j * k;
      float acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
      int64_t kk = 0;
      for (; kk + 4 <= k; kk += 4) {
        acc0 += arow[kk] * brow[kk];
        acc1 += arow[kk + 1] * brow[kk + 1];
        acc2 += arow[kk + 2] * brow[kk + 2];
        acc3 += arow[kk + 3] * brow[kk + 3];
      }
      float acc = (acc0 + acc1) + (acc2 + acc3);
      for (; kk < k; ++kk) acc += arow[kk] * brow[kk];
      cd[i * n + j] = acc;
    }
  return c;
}

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  return a.numel() == b.numel() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

// Per-op ulp-scaled tolerance for cross-backend comparisons: the AVX2
// kernel reassociates the k-sum, so the error bound grows with k and the
// operand magnitudes.
float cross_backend_tol(const Tensor& a, const Tensor& b, int64_t k) {
  float amax = 0, bmax = 0;
  for (int64_t i = 0; i < a.numel(); ++i)
    amax = std::max(amax, std::fabs(a.data()[i]));
  for (int64_t i = 0; i < b.numel(); ++i)
    bmax = std::max(bmax, std::fabs(b.data()[i]));
  return 16.0f * FLT_EPSILON * static_cast<float>(k) * amax * bmax + 1e-7f;
}

void expect_close(const Tensor& got, const Tensor& want, float tol,
                  const char* what) {
  ASSERT_EQ(got.numel(), want.numel());
  float worst = 0;
  for (int64_t i = 0; i < got.numel(); ++i)
    worst = std::max(worst, std::fabs(got.data()[i] - want.data()[i]));
  EXPECT_LE(worst, tol) << what << ": max |diff| " << worst;
}

// Fuzz shapes: odd extents, tails below the 6x16 microtile, k = 1, exact
// tile multiples, and sizes straddling the packed-path cutoff and the MC/KC
// cache blocks.
struct GemmShape {
  int64_t m, k, n;
};
const std::vector<GemmShape>& fuzz_shapes() {
  static const std::vector<GemmShape> shapes = {
      {1, 1, 1},    {1, 7, 1},     {2, 1, 3},     {3, 5, 2},
      {5, 3, 15},   {6, 8, 16},    {7, 17, 9},    {8, 13, 31},
      {13, 1, 17},  {16, 16, 16},  {17, 31, 33},  {31, 47, 5},
      {33, 64, 63}, {47, 95, 17},  {64, 97, 96},  {95, 33, 128},
      {96, 384, 16}, {97, 385, 17}, {128, 128, 128}, {130, 77, 201},
  };
  return shapes;
}

TEST(KernelsBackend, RegistryAndDispatch) {
  BackendGuard guard;
  ASSERT_TRUE(kernels::set_backend("scalar"));
  EXPECT_STREQ(kernels::backend_name(), "scalar");
  EXPECT_FALSE(kernels::set_backend("no-such-backend"));
  EXPECT_STREQ(kernels::backend_name(), "scalar");  // unchanged on failure
  EXPECT_EQ(kernels::set_backend("avx2"), kernels::avx2_supported());
  ASSERT_TRUE(kernels::set_backend("auto"));
  if (kernels::avx2_supported()) {
    EXPECT_STREQ(kernels::backend_name(), "avx2");
    EXPECT_TRUE(kernels::avx2_compiled());
  } else {
    EXPECT_STREQ(kernels::backend_name(), "scalar");
  }
}

TEST(KernelsScalar, BitwiseMatchesSeedReferenceAcrossThreads) {
  BackendGuard guard;
  ASSERT_TRUE(kernels::set_backend("scalar"));
  Rng rng(123);
  for (const GemmShape& s : fuzz_shapes()) {
    const Tensor a = rng.randn(Shape{s.m, s.k});
    const Tensor b = rng.randn(Shape{s.k, s.n});
    const Tensor at = rng.randn(Shape{s.k, s.m});
    const Tensor bt = rng.randn(Shape{s.n, s.k});
    const Tensor c_nn = ref_matmul(a, b);
    const Tensor c_tn = ref_matmul_tn(at, b);
    const Tensor c_nt = ref_matmul_nt(a, bt);
    for (int threads : {1, 4}) {
      runtime::set_threads(threads);
      EXPECT_TRUE(bitwise_equal(matmul(a, b), c_nn))
          << "nn " << s.m << "x" << s.k << "x" << s.n << " t" << threads;
      EXPECT_TRUE(bitwise_equal(matmul_tn(at, b), c_tn))
          << "tn " << s.m << "x" << s.k << "x" << s.n << " t" << threads;
      EXPECT_TRUE(bitwise_equal(matmul_nt(a, bt), c_nt))
          << "nt " << s.m << "x" << s.k << "x" << s.n << " t" << threads;
    }
  }
}

TEST(KernelsAvx2, MatchesReferenceWithinUlpTolerance) {
  if (!kernels::avx2_supported())
    GTEST_SKIP() << "host CPU lacks AVX2/FMA; avx2 backend unavailable";
  BackendGuard guard;
  ASSERT_TRUE(kernels::set_backend("avx2"));
  Rng rng(321);
  for (const GemmShape& s : fuzz_shapes()) {
    const Tensor a = rng.randn(Shape{s.m, s.k});
    const Tensor b = rng.randn(Shape{s.k, s.n});
    const Tensor at = rng.randn(Shape{s.k, s.m});
    const Tensor bt = rng.randn(Shape{s.n, s.k});
    const Tensor c_nn = ref_matmul(a, b);
    const Tensor c_tn = ref_matmul_tn(at, b);
    const Tensor c_nt = ref_matmul_nt(a, bt);
    for (int threads : {1, 4}) {
      runtime::set_threads(threads);
      expect_close(matmul(a, b), c_nn, cross_backend_tol(a, b, s.k), "nn");
      expect_close(matmul_tn(at, b), c_tn, cross_backend_tol(at, b, s.k),
                   "tn");
      expect_close(matmul_nt(a, bt), c_nt, cross_backend_tol(a, bt, s.k),
                   "nt");
    }
  }
}

TEST(KernelsAvx2, BitwiseIdenticalAcrossThreads) {
  if (!kernels::avx2_supported())
    GTEST_SKIP() << "host CPU lacks AVX2/FMA; avx2 backend unavailable";
  BackendGuard guard;
  ASSERT_TRUE(kernels::set_backend("avx2"));
  Rng rng(77);
  // Shapes chosen to span multiple MC row chunks and KC k-blocks, so the
  // parallel partition is actually exercised.
  for (const GemmShape& s :
       {GemmShape{200, 500, 40}, GemmShape{97, 385, 130}}) {
    const Tensor a = rng.randn(Shape{s.m, s.k});
    const Tensor b = rng.randn(Shape{s.k, s.n});
    const Tensor bt = rng.randn(Shape{s.n, s.k});
    runtime::set_threads(1);
    const Tensor nn1 = matmul(a, b), nt1 = matmul_nt(a, bt);
    runtime::set_threads(4);
    EXPECT_TRUE(bitwise_equal(matmul(a, b), nn1));
    EXPECT_TRUE(bitwise_equal(matmul_nt(a, bt), nt1));
  }
}

TEST(KernelsLowrank, FusedMatchesUnfusedBitwiseOnScalar) {
  BackendGuard guard;
  ASSERT_TRUE(kernels::set_backend("scalar"));
  Rng rng(55);
  // (m, in, r, out): rank-1, tails, and row counts crossing the 64-row
  // blocking of the fused driver.
  const int64_t cases[][4] = {
      {1, 1, 1, 1}, {3, 7, 1, 5}, {9, 16, 4, 11}, {65, 33, 8, 17},
      {130, 64, 16, 48}, {200, 96, 24, 96},
  };
  for (const auto& c : cases) {
    const int64_t m = c[0], in = c[1], r = c[2], out = c[3];
    const Tensor x = rng.randn(Shape{m, in});
    const Tensor v = rng.randn(Shape{in, r});
    const Tensor u = rng.randn(Shape{out, r});
    const Tensor t_ref = ref_matmul(x, v);
    const Tensor y_ref = ref_matmul_nt(t_ref, u);
    for (int threads : {1, 4}) {
      runtime::set_threads(threads);
      Tensor t_out;
      const Tensor y = kernels::lowrank_matmul(x, v, u, &t_out);
      EXPECT_TRUE(bitwise_equal(y, y_ref)) << m << "x" << in << " r" << r;
      EXPECT_TRUE(bitwise_equal(t_out, t_ref)) << "intermediate";
      // Without t_out (eval path, pooled scratch): same output bits.
      EXPECT_TRUE(bitwise_equal(kernels::lowrank_matmul(x, v, u), y_ref));
    }
  }
}

TEST(KernelsLowrank, FusedWithinToleranceOnAvx2) {
  if (!kernels::avx2_supported())
    GTEST_SKIP() << "host CPU lacks AVX2/FMA; avx2 backend unavailable";
  BackendGuard guard;
  ASSERT_TRUE(kernels::set_backend("avx2"));
  Rng rng(56);
  const int64_t m = 130, in = 96, r = 16, out = 80;
  const Tensor x = rng.randn(Shape{m, in});
  const Tensor v = rng.randn(Shape{in, r});
  const Tensor u = rng.randn(Shape{out, r});
  const Tensor t_ref = ref_matmul(x, v);
  const Tensor y_ref = ref_matmul_nt(t_ref, u);
  // Two reassociated stages: combine both stages' tolerance bounds.
  const float tol = cross_backend_tol(x, v, in) * 4.0f +
                    cross_backend_tol(t_ref, u, r);
  for (int threads : {1, 4}) {
    runtime::set_threads(threads);
    expect_close(kernels::lowrank_matmul(x, v, u), y_ref, tol, "lowrank");
  }
}

TEST(KernelsLowrank, LinearOpBitwiseMatchesTwoOpTape) {
  BackendGuard guard;
  ASSERT_TRUE(kernels::set_backend("scalar"));
  Rng rng(57);
  const int64_t m = 12, in = 10, r = 3, out = 7;
  const Tensor x = rng.randn(Shape{m, in});
  const Tensor v = rng.randn(Shape{in, r});
  const Tensor u = rng.randn(Shape{out, r});
  const Tensor dy = rng.randn(Shape{m, out});

  auto run = [&](bool fused) {
    ag::Var xl = ag::leaf(x, true);
    ag::Var vl = ag::leaf(v, true);
    ag::Var ul = ag::leaf(u, true);
    ag::Var y = fused ? ag::lowrank_linear(xl, vl, ul)
                      : ag::matmul_nt(ag::matmul(xl, vl), ul);
    ag::backward(y, dy);
    return std::vector<Tensor>{y->value, xl->grad, vl->grad, ul->grad};
  };
  const std::vector<Tensor> fused = run(true);
  const std::vector<Tensor> unfused = run(false);
  for (size_t i = 0; i < fused.size(); ++i)
    EXPECT_TRUE(bitwise_equal(fused[i], unfused[i])) << "tensor " << i;
}

TEST(KernelsLowrank, LinearOpGradcheck) {
  BackendGuard guard;
  ASSERT_TRUE(kernels::set_backend("scalar"));
  Rng rng(58);
  testing::gradcheck(
      [](const std::vector<ag::Var>& in) {
        return ag::sum_all(ag::lowrank_linear(in[0], in[1], in[2]));
      },
      {rng.randn(Shape{4, 5}), rng.randn(Shape{5, 2}),
       rng.randn(Shape{3, 2})});
}

TEST(KernelsLowrank, Conv2dFusedMatchesTwoConvEval) {
  BackendGuard guard;
  Rng rng(59);
  const int64_t n = 2, c_in = 5, h = 9, w = 9, r = 3, c_out = 8, k = 3;
  const Tensor x = rng.randn(Shape{n, c_in, h, w});
  const Tensor u = rng.randn(Shape{r, c_in, k, k});
  const Tensor v = rng.randn(Shape{c_out, r, 1, 1});
  ag::NoGradGuard ng;
  for (const char* backend : {"scalar", "avx2"}) {
    if (!kernels::set_backend(backend)) continue;  // avx2 host gate
    ag::Var xl = ag::leaf(x);
    ag::Var ul = ag::leaf(u);
    ag::Var vl = ag::leaf(v);
    const Tensor fused = ag::lowrank_conv2d(xl, ul, vl, 1, 1)->value;
    const Tensor two =
        ag::conv2d(ag::conv2d(xl, ul, 1, 1), vl, 1, 0)->value;
    // Same backend on both sides: the fusion only reorders per-sample loop
    // structure, never per-element accumulation, so bits must match.
    EXPECT_TRUE(bitwise_equal(fused, two)) << backend;
  }
}

TEST(KernelsLowrank, Conv2dThrowsWhenTaped) {
  BackendGuard guard;
  ASSERT_TRUE(kernels::set_backend("scalar"));
  Rng rng(60);
  ag::Var x = ag::leaf(rng.randn(Shape{1, 2, 5, 5}), true);
  ag::Var u = ag::leaf(rng.randn(Shape{2, 2, 3, 3}), true);
  ag::Var v = ag::leaf(rng.randn(Shape{4, 2, 1, 1}), true);
  EXPECT_THROW(ag::lowrank_conv2d(x, u, v, 1, 1), std::runtime_error);
}

TEST(KernelsTrace, GemmSpansReportAchievedGflops) {
  BackendGuard guard;
  ASSERT_TRUE(kernels::set_backend("scalar"));
  Rng rng(62);
  const Tensor a = rng.randn(Shape{64, 64});
  const Tensor b = rng.randn(Shape{64, 64});
  const bool was = trace::enabled();
  trace::set_enabled(true);
  trace::drain();  // drop spans buffered by earlier tests
  matmul(a, b);
  const std::vector<trace::Event> events = trace::drain();
  trace::set_enabled(was);
  const std::vector<trace::FlameRow> rows = trace::aggregate(events);
  bool found = false;
  for (const trace::FlameRow& r : rows) {
    if (r.name != "matmul") continue;
    found = true;
    EXPECT_EQ(r.counter_sum, 64 * 64 * 64);  // madds payload
    EXPECT_GT(r.gflops, 0.0);                // 2*madds / total time
  }
  EXPECT_TRUE(found) << "no matmul span recorded";
  EXPECT_TRUE(trace::is_gemm_span("lowrank"));
  EXPECT_FALSE(trace::is_gemm_span("im2col"));
}

TEST(KernelsBmm, BatchedVariantsBitwiseOnScalar) {
  BackendGuard guard;
  ASSERT_TRUE(kernels::set_backend("scalar"));
  Rng rng(61);
  const int64_t bt = 3, m = 7, k = 13, n = 5;
  const Tensor a = rng.randn(Shape{bt, m, k});
  const Tensor b = rng.randn(Shape{bt, k, n});
  const Tensor bnt = rng.randn(Shape{bt, n, k});
  const Tensor atn = rng.randn(Shape{bt, k, m});
  for (int threads : {1, 4}) {
    runtime::set_threads(threads);
    const Tensor c = bmm(a, b);
    const Tensor cnt = bmm_nt(a, bnt);
    const Tensor ctn = bmm_tn(atn, b);
    for (int64_t i = 0; i < bt; ++i) {
      const Tensor ai = a.narrow(i, 1).reshape(Shape{m, k});
      const Tensor bi = b.narrow(i, 1).reshape(Shape{k, n});
      const Tensor bnti = bnt.narrow(i, 1).reshape(Shape{n, k});
      const Tensor atni = atn.narrow(i, 1).reshape(Shape{k, m});
      EXPECT_TRUE(bitwise_equal(c.narrow(i, 1).reshape(Shape{m, n}),
                                ref_matmul(ai, bi)));
      EXPECT_TRUE(bitwise_equal(cnt.narrow(i, 1).reshape(Shape{m, n}),
                                ref_matmul_nt(ai, bnti)));
      EXPECT_TRUE(bitwise_equal(ctn.narrow(i, 1).reshape(Shape{m, n}),
                                ref_matmul_tn(atni, bi)));
    }
  }
}

}  // namespace
}  // namespace pf
