#include <filesystem>
#include <fstream>
#include "nn/serialize.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <utility>

#include "fault/fault.h"
#include "models/resnet.h"
#include "models/vgg.h"

namespace pf::nn {
namespace {

std::string tmp_path(const char* name) {
  // getpid(): the same test code runs concurrently in the plain binary and
  // the sanitizer ctest entries; a shared /tmp name lets one process
  // clobber the other's files mid-run.
  return std::string(::testing::TempDir()) + name + "." +
         std::to_string(::getpid());
}

TEST(Checkpoint, RoundTripPreservesParamsAndBuffers) {
  Rng rng(1);
  models::ResNetCifarConfig cfg;
  cfg.width_mult = 0.0625;
  models::ResNet18Cifar a(cfg, rng);

  // Perturb BN running stats so buffers are nontrivial.
  a.train(true);
  a.forward(ag::leaf(rng.randn(Shape{2, 3, 8, 8})));

  const std::string path = tmp_path("ckpt_roundtrip.bin");
  save_checkpoint(a, path);

  Rng rng2(999);  // different init
  models::ResNet18Cifar b(cfg, rng2);
  ASSERT_FALSE(allclose(a.flat_params(), b.flat_params()));
  load_checkpoint(b, path);
  EXPECT_TRUE(allclose(a.flat_params(), b.flat_params(), 0.0f, 0.0f));

  // Buffers (BN running stats) restored too: eval outputs identical.
  a.train(false);
  b.train(false);
  Tensor x = rng.randn(Shape{2, 3, 8, 8});
  EXPECT_TRUE(allclose(a.forward(ag::leaf(x))->value,
                       b.forward(ag::leaf(x))->value, 0.0f, 0.0f));
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsArchitectureMismatch) {
  Rng rng(2);
  models::VggConfig vcfg;
  vcfg.width_mult = 0.0625;
  models::Vgg19 vgg(vcfg, rng);
  const std::string path = tmp_path("ckpt_mismatch.bin");
  save_checkpoint(vgg, path);

  models::ResNetCifarConfig rcfg;
  rcfg.width_mult = 0.0625;
  models::ResNet18Cifar resnet(rcfg, rng);
  EXPECT_THROW(load_checkpoint(resnet, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsHybridIntoVanilla) {
  // The common user error: saving the hybrid and loading into the vanilla.
  Rng rng(3);
  models::ResNetCifarConfig v;
  v.width_mult = 0.0625;
  models::ResNetCifarConfig h = v;
  h.first_lowrank_block = 2;
  models::ResNet18Cifar hybrid(h, rng);
  const std::string path = tmp_path("ckpt_hybrid.bin");
  save_checkpoint(hybrid, path);
  models::ResNet18Cifar vanilla(v, rng);
  EXPECT_THROW(load_checkpoint(vanilla, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsCorruptFiles) {
  Rng rng(4);
  Linear l(4, 4, rng);
  const std::string path = tmp_path("ckpt_corrupt.bin");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    const char junk[] = "not a checkpoint";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
  }
  EXPECT_THROW(load_checkpoint(l, path), std::runtime_error);
  EXPECT_THROW(load_checkpoint(l, tmp_path("does_not_exist.bin")),
               std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, LegacyVersion0FilesStillLoad) {
  // Files written before the format-version byte existed must keep loading.
  Rng rng(6);
  Linear a(8, 8, rng);
  const std::string path = tmp_path("ckpt_v0.bin");
  save_checkpoint(a, path, /*version=*/0);

  // A v0 file starts with the legacy magic, not the v1 magic.
  {
    std::ifstream is(path, std::ios::binary);
    uint64_t magic = 0;
    is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
    ASSERT_TRUE(is.good());
    EXPECT_EQ(magic, kCheckpointMagicV0);
  }

  Rng rng2(60);
  Linear b(8, 8, rng2);
  ASSERT_FALSE(allclose(a.flat_params(), b.flat_params()));
  load_checkpoint(b, path);
  EXPECT_TRUE(allclose(a.flat_params(), b.flat_params(), 0.0f, 0.0f));
  std::remove(path.c_str());
}

TEST(Checkpoint, ChecksumDetectsPayloadBitFlip) {
  Rng rng(7);
  Linear a(16, 16, rng);
  const std::string path = tmp_path("ckpt_bitflip.bin");
  save_checkpoint(a, path);  // v1: magic | version | checksum | len | payload

  // Flip one bit in the middle of the payload. A v0-style loader would
  // happily parse this into silently-wrong weights; v1 must refuse.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(0, std::ios::end);
    const auto size = static_cast<int64_t>(f.tellg());
    const int64_t victim = size / 2;
    f.seekg(victim);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    f.seekp(victim);
    f.write(&byte, 1);
  }
  Linear b(16, 16, rng);
  try {
    load_checkpoint(b, path);
    FAIL() << "corrupted checkpoint loaded without error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
        << "unexpected error: " << e.what();
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, V1RoundTripPreservesParamsAndBuffers) {
  Rng rng(8);
  models::ResNetCifarConfig cfg;
  cfg.width_mult = 0.0625;
  cfg.first_lowrank_block = 2;  // hybrid: exercise factor shapes too
  models::ResNet18Cifar a(cfg, rng);
  a.train(true);
  a.forward(ag::leaf(rng.randn(Shape{2, 3, 8, 8})));

  const std::string path = tmp_path("ckpt_v1_roundtrip.bin");
  save_checkpoint(a, path);
  {
    std::ifstream is(path, std::ios::binary);
    uint64_t magic = 0;
    is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
    EXPECT_EQ(magic, kCheckpointMagicV1);
  }
  Rng rng2(80);
  models::ResNet18Cifar b(cfg, rng2);
  load_checkpoint(b, path);
  EXPECT_TRUE(allclose(a.flat_params(), b.flat_params(), 0.0f, 0.0f));
  a.train(false);
  b.train(false);
  Tensor x = rng.randn(Shape{2, 3, 8, 8});
  EXPECT_TRUE(allclose(a.forward(ag::leaf(x))->value,
                       b.forward(ag::leaf(x))->value, 0.0f, 0.0f));
  std::remove(path.c_str());
}

TEST(Checkpoint, TruncatedFileThrows) {
  Rng rng(5);
  Linear l(32, 32, rng);
  const std::string path = tmp_path("ckpt_trunc.bin");
  save_checkpoint(l, path);
  // Truncate to half size.
  {
    std::ifstream is(path, std::ios::binary | std::ios::ate);
    const auto size = is.tellg();
    is.close();
    std::filesystem::resize_file(path, static_cast<uintmax_t>(size) / 2);
  }
  Linear l2(32, 32, rng);
  EXPECT_THROW(load_checkpoint(l2, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, KillMidWritePreservesPreviousCheckpoint) {
  // Regression: save_checkpoint used to write the target file in place, so
  // a crash mid-write destroyed the only good checkpoint. With the
  // temp-file + rename protocol the crash hits <path>.tmp and the previous
  // file survives untouched.
  Rng rng(11);
  Linear l(16, 16, rng);
  const std::string path = tmp_path("ckpt_killed.bin");
  save_checkpoint(l, path);
  const Tensor before = l.flat_params();

  Linear next(16, 16, rng);  // different params: a newer epoch's weights
  {
    fault::ScopedWriteCrash crash(64);  // "kill -9" a few writes in
    EXPECT_THROW(save_checkpoint(next, path), fault::InjectedCrash);
  }

  // Previous checkpoint still loads, bitwise intact; no orphaned temp file.
  Linear restored(16, 16, rng);
  load_checkpoint(restored, path);
  const Tensor after = restored.flat_params();
  ASSERT_EQ(before.shape(), after.shape());
  EXPECT_EQ(std::memcmp(std::as_const(before).data(),
                        std::as_const(after).data(),
                        static_cast<size_t>(before.numel()) * sizeof(float)),
            0);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  // Disarmed again: the interrupted save succeeds when retried.
  save_checkpoint(next, path);
  Linear next2(16, 16, rng);
  load_checkpoint(next2, path);
  std::remove(path.c_str());
}

TEST(Checkpoint, AtomicWriteCleansUpTempOnFailure) {
  const std::string path = tmp_path("atomic_probe.bin");
  atomic_write(path, [](std::ofstream& os) {
    const char payload[] = "payload";
    os.write(payload, sizeof(payload));
  });
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  EXPECT_THROW(atomic_write(path,
                            [](std::ofstream&) {
                              throw std::runtime_error("writer failed");
                            }),
               std::runtime_error);
  EXPECT_TRUE(std::filesystem::exists(path));  // old file untouched
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pf::nn
