#include <filesystem>
#include <fstream>
#include "nn/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "models/resnet.h"
#include "models/vgg.h"

namespace pf::nn {
namespace {

std::string tmp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

TEST(Checkpoint, RoundTripPreservesParamsAndBuffers) {
  Rng rng(1);
  models::ResNetCifarConfig cfg;
  cfg.width_mult = 0.0625;
  models::ResNet18Cifar a(cfg, rng);

  // Perturb BN running stats so buffers are nontrivial.
  a.train(true);
  a.forward(ag::leaf(rng.randn(Shape{2, 3, 8, 8})));

  const std::string path = tmp_path("ckpt_roundtrip.bin");
  save_checkpoint(a, path);

  Rng rng2(999);  // different init
  models::ResNet18Cifar b(cfg, rng2);
  ASSERT_FALSE(allclose(a.flat_params(), b.flat_params()));
  load_checkpoint(b, path);
  EXPECT_TRUE(allclose(a.flat_params(), b.flat_params(), 0.0f, 0.0f));

  // Buffers (BN running stats) restored too: eval outputs identical.
  a.train(false);
  b.train(false);
  Tensor x = rng.randn(Shape{2, 3, 8, 8});
  EXPECT_TRUE(allclose(a.forward(ag::leaf(x))->value,
                       b.forward(ag::leaf(x))->value, 0.0f, 0.0f));
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsArchitectureMismatch) {
  Rng rng(2);
  models::VggConfig vcfg;
  vcfg.width_mult = 0.0625;
  models::Vgg19 vgg(vcfg, rng);
  const std::string path = tmp_path("ckpt_mismatch.bin");
  save_checkpoint(vgg, path);

  models::ResNetCifarConfig rcfg;
  rcfg.width_mult = 0.0625;
  models::ResNet18Cifar resnet(rcfg, rng);
  EXPECT_THROW(load_checkpoint(resnet, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsHybridIntoVanilla) {
  // The common user error: saving the hybrid and loading into the vanilla.
  Rng rng(3);
  models::ResNetCifarConfig v;
  v.width_mult = 0.0625;
  models::ResNetCifarConfig h = v;
  h.first_lowrank_block = 2;
  models::ResNet18Cifar hybrid(h, rng);
  const std::string path = tmp_path("ckpt_hybrid.bin");
  save_checkpoint(hybrid, path);
  models::ResNet18Cifar vanilla(v, rng);
  EXPECT_THROW(load_checkpoint(vanilla, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsCorruptFiles) {
  Rng rng(4);
  Linear l(4, 4, rng);
  const std::string path = tmp_path("ckpt_corrupt.bin");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    const char junk[] = "not a checkpoint";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
  }
  EXPECT_THROW(load_checkpoint(l, path), std::runtime_error);
  EXPECT_THROW(load_checkpoint(l, tmp_path("does_not_exist.bin")),
               std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, TruncatedFileThrows) {
  Rng rng(5);
  Linear l(32, 32, rng);
  const std::string path = tmp_path("ckpt_trunc.bin");
  save_checkpoint(l, path);
  // Truncate to half size.
  {
    std::ifstream is(path, std::ios::binary | std::ios::ate);
    const auto size = is.tellg();
    is.close();
    std::filesystem::resize_file(path, static_cast<uintmax_t>(size) / 2);
  }
  Linear l2(32, 32, rng);
  EXPECT_THROW(load_checkpoint(l2, path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pf::nn
