#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/rng.h"

namespace pf {
namespace {

TEST(Tensor, ConstructionAndFill) {
  Tensor t(Shape{2, 3});
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.dim(), 2);
  EXPECT_EQ(t.size(0), 2);
  EXPECT_EQ(t.size(1), 3);
  EXPECT_EQ(t.size(-1), 3);
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(t[i], 0.0f);
  t.fill(2.5f);
  EXPECT_FLOAT_EQ(t.sum(), 15.0f);
}

TEST(Tensor, ScalarAndArange) {
  Tensor s = Tensor::scalar(3.0f);
  EXPECT_EQ(s.numel(), 1);
  EXPECT_EQ(s.dim(), 0);
  Tensor a = Tensor::arange(5);
  EXPECT_FLOAT_EQ(a[3], 3.0f);
  EXPECT_FLOAT_EQ(a.sum(), 10.0f);
}

TEST(Tensor, MultiIndexAccess) {
  Tensor t(Shape{2, 3, 4});
  t.at({1, 2, 3}) = 7.0f;
  EXPECT_FLOAT_EQ(t[1 * 12 + 2 * 4 + 3], 7.0f);
  EXPECT_FLOAT_EQ(t.at({1, 2, 3}), 7.0f);
}

TEST(Tensor, ReshapeKeepsData) {
  Tensor t = Tensor::arange(12);
  Tensor r = t.reshape(Shape{3, 4});
  EXPECT_EQ(r.shape(), (Shape{3, 4}));
  EXPECT_FLOAT_EQ(r.at({2, 1}), 9.0f);
}

TEST(Tensor, ReshapeInfersDim) {
  Tensor t = Tensor::arange(12);
  Tensor r = t.reshape(Shape{2, -1});
  EXPECT_EQ(r.shape(), (Shape{2, 6}));
  EXPECT_THROW(t.reshape(Shape{5, -1}), std::runtime_error);
  EXPECT_THROW(t.reshape(Shape{-1, -1}), std::runtime_error);
}

TEST(Tensor, ReshapeRejectsWrongNumel) {
  Tensor t = Tensor::arange(12);
  EXPECT_THROW(t.reshape(Shape{5, 2}), std::runtime_error);
}

TEST(Tensor, Transpose2D) {
  Tensor t = Tensor::arange(6).reshape(Shape{2, 3});
  Tensor tt = t.t();
  EXPECT_EQ(tt.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(tt.at({2, 1}), t.at({1, 2}));
}

TEST(Tensor, TransposePermutation) {
  Tensor t = Tensor::arange(24).reshape(Shape{2, 3, 4});
  Tensor p = t.transpose({2, 0, 1});
  EXPECT_EQ(p.shape(), (Shape{4, 2, 3}));
  for (int64_t i = 0; i < 2; ++i)
    for (int64_t j = 0; j < 3; ++j)
      for (int64_t k = 0; k < 4; ++k)
        EXPECT_FLOAT_EQ(p.at({k, i, j}), t.at({i, j, k}));
}

TEST(Tensor, TransposeRoundTrip) {
  Tensor t = Tensor::arange(24).reshape(Shape{2, 3, 4});
  Tensor round = t.transpose({1, 2, 0}).transpose({2, 0, 1});
  EXPECT_TRUE(allclose(round, t));
}

TEST(Tensor, ElementwiseSameShape) {
  Tensor a = Tensor::arange(4);
  Tensor b = Tensor::full(Shape{4}, 2.0f);
  EXPECT_FLOAT_EQ((a + b)[3], 5.0f);
  EXPECT_FLOAT_EQ((a - b)[0], -2.0f);
  EXPECT_FLOAT_EQ((a * b)[2], 4.0f);
  EXPECT_FLOAT_EQ((a / b)[1], 0.5f);
}

TEST(Tensor, ScalarOps) {
  Tensor a = Tensor::arange(3);
  EXPECT_FLOAT_EQ((a * 2.0f)[2], 4.0f);
  EXPECT_FLOAT_EQ((2.0f * a)[2], 4.0f);
  EXPECT_FLOAT_EQ((a + 1.0f)[0], 1.0f);
  EXPECT_FLOAT_EQ((-a)[1], -1.0f);
}

TEST(Tensor, BroadcastRowVector) {
  Tensor a = Tensor::arange(6).reshape(Shape{2, 3});
  Tensor b = Tensor::arange(3);  // broadcasts over rows
  Tensor c = a + b;
  EXPECT_EQ(c.shape(), (Shape{2, 3}));
  EXPECT_FLOAT_EQ(c.at({1, 2}), 5.0f + 2.0f);
}

TEST(Tensor, BroadcastColumnVector) {
  Tensor a = Tensor::ones(Shape{2, 3});
  Tensor b = Tensor::arange(2).reshape(Shape{2, 1});
  Tensor c = a * b;
  EXPECT_FLOAT_EQ(c.at({0, 2}), 0.0f);
  EXPECT_FLOAT_EQ(c.at({1, 0}), 1.0f);
}

TEST(Tensor, BroadcastBothSides) {
  Tensor a = Tensor::arange(2).reshape(Shape{2, 1});
  Tensor b = Tensor::arange(3).reshape(Shape{1, 3});
  Tensor c = a + b;
  EXPECT_EQ(c.shape(), (Shape{2, 3}));
  EXPECT_FLOAT_EQ(c.at({1, 2}), 3.0f);
}

TEST(Tensor, BroadcastShapeMismatchThrows) {
  Tensor a = Tensor::ones(Shape{2, 3});
  Tensor b = Tensor::ones(Shape{2, 4});
  EXPECT_THROW(a + b, std::runtime_error);
}

TEST(Tensor, ReduceToShapeSumsBroadcastDims) {
  Tensor g = Tensor::ones(Shape{4, 3});
  Tensor r = reduce_to_shape(g, Shape{3});
  EXPECT_EQ(r.shape(), (Shape{3}));
  EXPECT_FLOAT_EQ(r[0], 4.0f);
  Tensor r2 = reduce_to_shape(g, Shape{4, 1});
  EXPECT_EQ(r2.shape(), (Shape{4, 1}));
  EXPECT_FLOAT_EQ(r2[0], 3.0f);
}

TEST(Tensor, Reductions) {
  Tensor t = Tensor::from_vector({1, -5, 3, 2});
  EXPECT_FLOAT_EQ(t.sum(), 1.0f);
  EXPECT_FLOAT_EQ(t.mean(), 0.25f);
  EXPECT_FLOAT_EQ(t.min(), -5.0f);
  EXPECT_FLOAT_EQ(t.max(), 3.0f);
  EXPECT_FLOAT_EQ(t.abs_max(), 5.0f);
  EXPECT_EQ(t.argmax(), 2);
  EXPECT_NEAR(t.norm(), std::sqrt(1 + 25 + 9 + 4), 1e-5);
}

TEST(Tensor, SumAxis) {
  Tensor t = Tensor::arange(6).reshape(Shape{2, 3});
  Tensor s0 = sum_axis(t, 0);
  EXPECT_EQ(s0.shape(), (Shape{3}));
  EXPECT_FLOAT_EQ(s0[0], 3.0f);
  Tensor s1 = sum_axis(t, 1, /*keepdim=*/true);
  EXPECT_EQ(s1.shape(), (Shape{2, 1}));
  EXPECT_FLOAT_EQ(s1[1], 12.0f);
  Tensor sneg = sum_axis(t, -1);
  EXPECT_FLOAT_EQ(sneg[0], 3.0f);
}

TEST(Tensor, MeanAndMaxAxis) {
  Tensor t = Tensor::from_vector({1, 2, 3, 4, 5, 6}).reshape(Shape{2, 3});
  EXPECT_FLOAT_EQ(mean_axis(t, 1)[0], 2.0f);
  EXPECT_FLOAT_EQ(max_axis(t, 0)[2], 6.0f);
}

TEST(Tensor, ArgmaxRows) {
  Tensor t = Tensor::from_vector({1, 9, 2, 8, 3, 4}).reshape(Shape{2, 3});
  auto am = argmax_rows(t);
  EXPECT_EQ(am[0], 1);
  EXPECT_EQ(am[1], 0);
}

TEST(Tensor, ConcatAxis0) {
  Tensor a = Tensor::ones(Shape{2, 3});
  Tensor b = Tensor::full(Shape{1, 3}, 2.0f);
  Tensor c = concat({a, b}, 0);
  EXPECT_EQ(c.shape(), (Shape{3, 3}));
  EXPECT_FLOAT_EQ(c.at({2, 0}), 2.0f);
}

TEST(Tensor, ConcatAxis1) {
  Tensor a = Tensor::arange(4).reshape(Shape{2, 2});
  Tensor b = Tensor::full(Shape{2, 1}, 9.0f);
  Tensor c = concat({a, b}, 1);
  EXPECT_EQ(c.shape(), (Shape{2, 3}));
  EXPECT_FLOAT_EQ(c.at({0, 2}), 9.0f);
  EXPECT_FLOAT_EQ(c.at({1, 1}), 3.0f);
}

TEST(Tensor, SliceMiddle) {
  Tensor t = Tensor::arange(24).reshape(Shape{2, 4, 3});
  Tensor s = slice(t, 1, 1, 2);
  EXPECT_EQ(s.shape(), (Shape{2, 2, 3}));
  EXPECT_FLOAT_EQ(s.at({0, 0, 0}), t.at({0, 1, 0}));
  EXPECT_FLOAT_EQ(s.at({1, 1, 2}), t.at({1, 2, 2}));
}

TEST(Tensor, SliceConcatRoundTrip) {
  Tensor t = Tensor::arange(24).reshape(Shape{2, 4, 3});
  Tensor a = slice(t, 1, 0, 2), b = slice(t, 1, 2, 2);
  EXPECT_TRUE(allclose(concat({a, b}, 1), t));
}

TEST(Tensor, PadSliceIsAdjointOfSlice) {
  Tensor piece = Tensor::ones(Shape{2, 2, 3});
  Tensor full = pad_slice(piece, Shape{2, 4, 3}, 1, 1);
  EXPECT_EQ(full.shape(), (Shape{2, 4, 3}));
  EXPECT_FLOAT_EQ(full.sum(), piece.sum());
  EXPECT_FLOAT_EQ(full.at({0, 0, 0}), 0.0f);
  EXPECT_FLOAT_EQ(full.at({0, 1, 0}), 1.0f);
  // slice(pad_slice(x)) == x.
  EXPECT_TRUE(allclose(slice(full, 1, 1, 2), piece));
}

TEST(Tensor, UnaryMathOps) {
  Tensor t = Tensor::from_vector({0.0f, 1.0f, 4.0f});
  EXPECT_NEAR(exp(t)[1], std::exp(1.0f), 1e-5);
  EXPECT_NEAR(log(t + 1.0f)[0], 0.0f, 1e-6);
  EXPECT_FLOAT_EQ(sqrt(t)[2], 2.0f);
  EXPECT_FLOAT_EQ(abs(-t)[1], 1.0f);
  EXPECT_FLOAT_EQ(pow(t, 2.0f)[2], 16.0f);
  EXPECT_FLOAT_EQ(clamp(t, 0.5f, 2.0f)[0], 0.5f);
  EXPECT_FLOAT_EQ(clamp(t, 0.5f, 2.0f)[2], 2.0f);
}

TEST(Tensor, AddInPlaceWithAlpha) {
  Tensor a = Tensor::ones(Shape{3});
  Tensor b = Tensor::arange(3);
  a.add_(b, 2.0f);
  EXPECT_FLOAT_EQ(a[2], 5.0f);
  EXPECT_THROW(a.add_(Tensor::ones(Shape{4})), std::runtime_error);
}

TEST(Tensor, AllcloseAndMaxAbsDiff) {
  Tensor a = Tensor::ones(Shape{3});
  Tensor b = a;
  b[1] += 1e-7f;
  EXPECT_TRUE(allclose(a, b));
  b[1] += 1.0f;
  EXPECT_FALSE(allclose(a, b));
  EXPECT_NEAR(max_abs_diff(a, b), 1.0f, 1e-5);
  EXPECT_FALSE(allclose(a, Tensor::ones(Shape{4})));
}

TEST(Tensor, ShapeHelpers) {
  EXPECT_EQ(shape_numel(Shape{}), 1);
  EXPECT_EQ(shape_numel(Shape{2, 3, 4}), 24);
  EXPECT_EQ(shape_str(Shape{2, 3}), "[2, 3]");
  EXPECT_EQ(broadcast_shape(Shape{3, 1, 5}, Shape{2, 1}),
            (Shape{3, 2, 5}));
}

// Property sweep: broadcasting agrees with an explicit tiling reference.
struct BroadcastCase {
  Shape a, b;
};

class BroadcastP : public ::testing::TestWithParam<BroadcastCase> {};

TEST_P(BroadcastP, MatchesExplicitTiling) {
  const auto& [sa, sb] = GetParam();
  Rng rng(42);
  Tensor a = rng.rand(sa), b = rng.rand(sb);
  Tensor c = a + b;
  const Shape os = broadcast_shape(sa, sb);
  ASSERT_EQ(c.shape(), os);
  // Reference: index arithmetic per element.
  const size_t nd = os.size();
  std::vector<int64_t> idx(nd, 0);
  for (int64_t flat = 0; flat < c.numel(); ++flat) {
    auto fetch = [&](const Tensor& t) {
      const Shape& s = t.shape();
      int64_t off = 0, stride = 1;
      for (int64_t d = static_cast<int64_t>(s.size()) - 1; d >= 0; --d) {
        const size_t od = nd - s.size() + static_cast<size_t>(d);
        const int64_t i =
            s[static_cast<size_t>(d)] == 1 ? 0 : idx[od];
        off += i * stride;
        stride *= s[static_cast<size_t>(d)];
      }
      return t[off];
    };
    EXPECT_FLOAT_EQ(c[flat], fetch(a) + fetch(b)) << "flat=" << flat;
    for (int64_t d = static_cast<int64_t>(nd) - 1; d >= 0; --d) {
      if (++idx[static_cast<size_t>(d)] < os[static_cast<size_t>(d)]) break;
      idx[static_cast<size_t>(d)] = 0;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BroadcastP,
    ::testing::Values(BroadcastCase{{4}, {4}}, BroadcastCase{{2, 3}, {3}},
                      BroadcastCase{{2, 3}, {2, 1}},
                      BroadcastCase{{1, 3}, {2, 1}},
                      BroadcastCase{{2, 1, 4}, {3, 1}},
                      BroadcastCase{{5}, {2, 3, 5}},
                      BroadcastCase{{2, 3, 4}, {2, 3, 4}}));

// Property sweep: sum_axis equals manual summation for every axis.
class SumAxisP : public ::testing::TestWithParam<int64_t> {};

TEST_P(SumAxisP, MatchesManual) {
  const int64_t axis = GetParam();
  Rng rng(7);
  Tensor t = rng.rand(Shape{3, 4, 5});
  Tensor s = sum_axis(t, axis, /*keepdim=*/true);
  // Sum the slices manually.
  Tensor manual(s.shape());
  for (int64_t i = 0; i < t.size(axis); ++i) {
    Tensor sl = slice(t, axis, i, 1);
    manual.add_(sl);
  }
  EXPECT_TRUE(allclose(s, manual, 1e-4f, 1e-5f));
}

INSTANTIATE_TEST_SUITE_P(Axes, SumAxisP, ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace pf
