// Resume-exact recovery: a run checkpointed at epoch k and resumed is
// bitwise-identical to the uninterrupted run -- across the warm-up -> SVD
// boundary, for the single-process Algorithm 1 harness and the shm
// data-parallel cluster alike. Also covers the TrainState on-disk format,
// torn-pair detection, and mid-write crash safety. The whole file runs
// under PF_THREADS=4 (ctest pf_tests_threads4) and ASan (pf_tests_fault).
#include "core/checkpoint.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "core/trainer.h"
#include "models/resnet.h"
#include "nn/serialize.h"
#include "runtime/shm_cluster.h"

namespace pf::core {
namespace {

std::string tmp_dir(const std::string& name) {
  // Process-unique suffix: under parallel ctest these tests run
  // concurrently in the plain binary (one process per test) and the ASan
  // binary (pf_tests_fault); a shared path lets one process's remove_all
  // or snapshot writes corrupt the other's run.
  const std::string d = std::string(::testing::TempDir()) + name + "_" +
                        std::to_string(::getpid());
  std::filesystem::remove_all(d);  // stale snapshots from a previous run
  return d;
}

std::vector<char> file_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(is)) << path;
  return std::vector<char>(std::istreambuf_iterator<char>(is), {});
}

data::SyntheticImages tiny_images() {
  data::SyntheticImages::Config dc;
  dc.num_classes = 4;
  dc.hw = 8;
  dc.train_size = 48;
  dc.test_size = 24;
  dc.augment = false;
  return data::SyntheticImages(dc);
}

VisionModelFactory resnet_factory(bool hybrid) {
  return [hybrid](Rng& rng) -> std::unique_ptr<nn::UnaryModule> {
    models::ResNetCifarConfig cfg =
        hybrid ? models::ResNetCifarConfig::pufferfish()
               : models::ResNetCifarConfig::vanilla();
    cfg.width_mult = 0.0625;
    cfg.num_classes = 4;
    return std::make_unique<models::ResNet18Cifar>(cfg, rng);
  };
}

// ---------------- TrainState format ----------------

TEST(Resume, TrainStateRoundTrips) {
  TrainState st;
  st.next_epoch = 3;
  st.global_step = 17;
  st.low_rank_phase = true;
  st.svd_seconds = 1.5;
  st.cumulative_seconds = 9.25;
  st.policy = RankPolicy::energy_based(0.8, 2).encode();
  st.model_hash = 0xDEADBEEFull;
  Rng rng(5);
  (void)rng.normal();  // leaves a cached Box-Muller value in the state
  st.rng = rng.state();
  st.worker_rngs = {Rng::stream(1, 0).state(), Rng::stream(1, 1).state()};
  st.opt_scalars = {42};
  Tensor t = Tensor::uninit(Shape{3, 2});
  for (int64_t i = 0; i < t.numel(); ++i) t.data()[i] = 0.5f * i;
  st.opt_tensors.push_back(std::move(t));

  const std::string path =
      std::string(::testing::TempDir()) + "train_state_rt.bin." + std::to_string(::getpid());
  save_train_state(st, path);
  const TrainState got = load_train_state(path);

  EXPECT_EQ(got.next_epoch, st.next_epoch);
  EXPECT_EQ(got.global_step, st.global_step);
  EXPECT_EQ(got.low_rank_phase, st.low_rank_phase);
  EXPECT_EQ(got.svd_seconds, st.svd_seconds);
  EXPECT_EQ(got.cumulative_seconds, st.cumulative_seconds);
  EXPECT_EQ(got.policy, st.policy);
  EXPECT_EQ(got.model_hash, st.model_hash);
  EXPECT_TRUE(RankPolicy::decode(got.policy) ==
              RankPolicy::energy_based(0.8, 2));
  auto same_rng = [](const Rng::State& a, const Rng::State& b) {
    return std::memcmp(a.s, b.s, sizeof(a.s)) == 0 &&
           a.has_cached == b.has_cached && a.cached == b.cached;
  };
  EXPECT_TRUE(same_rng(got.rng, st.rng));
  EXPECT_TRUE(got.rng.has_cached);  // the Box-Muller cache survived
  ASSERT_EQ(got.worker_rngs.size(), 2u);
  EXPECT_TRUE(same_rng(got.worker_rngs[0], st.worker_rngs[0]));
  EXPECT_TRUE(same_rng(got.worker_rngs[1], st.worker_rngs[1]));
  EXPECT_EQ(got.opt_scalars, st.opt_scalars);
  ASSERT_EQ(got.opt_tensors.size(), 1u);
  EXPECT_EQ(got.opt_tensors[0].shape(), st.opt_tensors[0].shape());
  EXPECT_EQ(std::memcmp(std::as_const(got.opt_tensors[0]).data(),
                        std::as_const(st.opt_tensors[0]).data(),
                        sizeof(float) * 6),
            0);
  std::remove(path.c_str());
}

TEST(Resume, TrainStateRejectsCorruptFile) {
  TrainState st;
  st.next_epoch = 1;
  const std::string path =
      std::string(::testing::TempDir()) + "train_state_corrupt.bin." + std::to_string(::getpid());
  save_train_state(st, path);
  {
    std::fstream f(path,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-1, std::ios::end);  // flip a payload byte
    char c;
    f.seekg(-1, std::ios::end);
    f.get(c);
    f.seekp(-1, std::ios::end);
    f.put(static_cast<char>(c ^ 0x40));
  }
  EXPECT_THROW(load_train_state(path), std::runtime_error);
  EXPECT_THROW(load_train_state(path + ".nope"), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Resume, MidWriteCrashPreservesPreviousTrainState) {
  const std::string path =
      std::string(::testing::TempDir()) + "train_state_crash.bin." + std::to_string(::getpid());
  TrainState good;
  good.next_epoch = 7;
  save_train_state(good, path);

  TrainState next;
  next.next_epoch = 8;
  {
    fault::ScopedWriteCrash crash(12);  // dies inside the header
    EXPECT_THROW(save_train_state(next, path), fault::InjectedCrash);
  }
  // The crash hit the temp file: the previous state is intact and no
  // orphaned .tmp is left behind.
  EXPECT_EQ(load_train_state(path).next_epoch, 7);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(Resume, TornSnapshotIsDetected) {
  const std::string dir = tmp_dir("torn_snapshot");
  Rng rng(3);
  auto model = resnet_factory(false)(rng);
  TrainState st;
  st.next_epoch = 2;
  save_snapshot(*model, st, dir);
  EXPECT_TRUE(snapshot_exists(dir));
  // Crash "between the two files": weights from a different epoch/model
  // under an older state.
  Rng rng2(99);
  auto other = resnet_factory(false)(rng2);
  nn::save_checkpoint(*other, snapshot_paths(dir).model);
  Rng rng3(1);
  auto loaded = resnet_factory(false)(rng3);
  EXPECT_THROW(load_snapshot(*loaded, dir), std::runtime_error);
  std::filesystem::remove_all(dir);
}

// ---------------- train_vision resume-exact ----------------

// K epochs straight vs: train k epochs (the "crash"), resume from the
// snapshot, finish. Final weights must be byte-identical; per-epoch losses
// of the continuation must equal the straight run's exactly.
void expect_vision_resume_bitwise(int k) {
  auto ds = tiny_images();
  VisionTrainConfig base;
  base.epochs = 4;
  base.warmup_epochs = 2;
  base.batch = 16;
  base.seed = 11;
  base.checkpoint_every = 1;

  const std::string dir_a = tmp_dir("vision_straight_k" + std::to_string(k));
  const std::string dir_b = tmp_dir("vision_resumed_k" + std::to_string(k));

  VisionTrainConfig straight = base;
  straight.checkpoint_dir = dir_a;
  const VisionResult full = train_vision(resnet_factory(false),
                                         resnet_factory(true), ds, straight);

  // The "crashed" run: only k epochs happen before the process dies; its
  // snapshot (written after epoch k) is all that survives.
  VisionTrainConfig partial = base;
  partial.epochs = k;
  partial.checkpoint_dir = dir_b;
  (void)train_vision(resnet_factory(false), resnet_factory(true), ds,
                     partial);

  VisionTrainConfig cont = base;
  cont.checkpoint_dir = dir_b;
  cont.resume = true;
  const VisionResult resumed = train_vision(resnet_factory(false),
                                            resnet_factory(true), ds, cont);

  ASSERT_EQ(full.epochs.size(), 4u);
  ASSERT_EQ(resumed.epochs.size(), static_cast<size_t>(4 - k));
  for (size_t i = 0; i < resumed.epochs.size(); ++i) {
    EXPECT_EQ(full.epochs[static_cast<size_t>(k) + i].train_loss,
              resumed.epochs[i].train_loss)
        << "k=" << k << " continued epoch " << i;
    EXPECT_EQ(full.epochs[static_cast<size_t>(k) + i].low_rank_phase,
              resumed.epochs[i].low_rank_phase);
  }
  EXPECT_EQ(full.final_loss, resumed.final_loss);
  EXPECT_EQ(full.final_acc, resumed.final_acc);
  EXPECT_EQ(full.params, resumed.params);

  // Both runs checkpoint after their last epoch; the serialized weights
  // (params + BN buffers) must be byte-for-byte identical.
  const auto a = file_bytes(snapshot_paths(dir_a).model);
  const auto b = file_bytes(snapshot_paths(dir_b).model);
  EXPECT_EQ(a, b) << "k=" << k;

  std::filesystem::remove_all(dir_a);
  std::filesystem::remove_all(dir_b);
}

TEST(Resume, VisionBitwiseExactInsideWarmup) {
  expect_vision_resume_bitwise(1);  // resumes across the warm-up -> SVD edge
}

TEST(Resume, VisionBitwiseExactAfterFactorization) {
  expect_vision_resume_bitwise(3);  // resumes into the fine-tune phase
}

TEST(Resume, VisionFinishedRunResumesAsNoOp) {
  auto ds = tiny_images();
  const std::string dir = tmp_dir("vision_noop");
  VisionTrainConfig cfg;
  cfg.epochs = 2;
  cfg.warmup_epochs = 1;
  cfg.batch = 16;
  cfg.checkpoint_dir = dir;
  const VisionResult full =
      train_vision(resnet_factory(false), resnet_factory(true), ds, cfg);
  cfg.resume = true;
  const VisionResult again =
      train_vision(resnet_factory(false), resnet_factory(true), ds, cfg);
  EXPECT_TRUE(again.epochs.empty());  // nothing left to train
  EXPECT_EQ(again.final_loss, full.final_loss);
  EXPECT_EQ(again.final_acc, full.final_acc);
  std::filesystem::remove_all(dir);
}

TEST(Resume, VisionPolicyMismatchThrows) {
  auto ds = tiny_images();
  const std::string dir = tmp_dir("vision_policy_mismatch");
  VisionTrainConfig cfg;
  cfg.epochs = 1;
  cfg.warmup_epochs = 2;
  cfg.batch = 16;
  cfg.checkpoint_dir = dir;
  cfg.rank_policy = RankPolicy::fixed(0.25);
  (void)train_vision(resnet_factory(false), resnet_factory(true), ds, cfg);

  VisionTrainConfig other = cfg;
  other.epochs = 2;
  other.resume = true;
  other.rank_policy = RankPolicy::energy_based(0.9);
  EXPECT_THROW(train_vision(resnet_factory(false), resnet_factory(true), ds,
                            other),
               std::runtime_error);
  std::filesystem::remove_all(dir);
}

// ---------------- Shm cluster resume-exact ----------------

runtime::ShmClusterConfig shm_config() {
  runtime::ShmClusterConfig scfg;
  scfg.workers = 4;
  scfg.bucket_bytes = 16 << 10;
  scfg.train.epochs = 2;
  scfg.train.global_batch = 16;
  scfg.train.lr = 0.05f;
  scfg.train.seed = 3;
  return scfg;
}

VisionModelFactory shm_factory() {
  return [](Rng& rng) -> std::unique_ptr<nn::UnaryModule> {
    models::ResNetCifarConfig cfg;
    cfg.width_mult = 0.0625;
    cfg.num_classes = 4;
    return std::make_unique<models::ResNet18Cifar>(cfg, rng);
  };
}

data::SyntheticImages shm_data() {
  data::SyntheticImages::Config dc;
  dc.num_classes = 4;
  dc.hw = 8;
  dc.train_size = 32;
  dc.test_size = 16;
  dc.augment = false;
  return data::SyntheticImages(dc);
}

TEST(Resume, ShmClusterResumeIsBitwiseExact) {
  auto ds = shm_data();
  runtime::ShmDataParallelTrainer straight(shm_factory(), nullptr,
                                           shm_config());
  (void)straight.train(ds);

  const std::string dir = tmp_dir("shm_resume");
  runtime::ShmClusterConfig part = shm_config();
  part.train.epochs = 1;  // the "crash" after epoch 0's snapshot
  part.checkpoint_dir = dir;
  runtime::ShmDataParallelTrainer crashed(shm_factory(), nullptr, part);
  (void)crashed.train(ds);

  runtime::ShmClusterConfig cont = shm_config();
  cont.checkpoint_dir = dir;
  cont.resume = true;
  runtime::ShmDataParallelTrainer resumed(shm_factory(), nullptr, cont);
  const auto recs = resumed.train(ds);

  ASSERT_EQ(recs.size(), 1u);  // only epoch 1 was left to run
  const Tensor a = straight.model().flat_params();
  const Tensor b = resumed.model().flat_params();
  ASSERT_EQ(a.shape(), b.shape());
  EXPECT_EQ(std::memcmp(std::as_const(a).data(), std::as_const(b).data(),
                        static_cast<size_t>(a.numel()) * sizeof(float)),
            0);
  EXPECT_EQ(resumed.global_step(), straight.global_step());
  // Per-worker Rng streams resumed mid-sequence, not re-seeded.
  for (int w = 0; w < 4; ++w)
    EXPECT_EQ(resumed.worker_rng(w).next_u64(),
              straight.worker_rng(w).next_u64())
        << "worker " << w;
  std::filesystem::remove_all(dir);
}

TEST(Resume, ShmClusterWorkerCountMismatchThrows) {
  auto ds = shm_data();
  const std::string dir = tmp_dir("shm_workers_mismatch");
  runtime::ShmClusterConfig part = shm_config();
  part.train.epochs = 1;
  part.checkpoint_dir = dir;
  runtime::ShmDataParallelTrainer crashed(shm_factory(), nullptr, part);
  (void)crashed.train(ds);

  runtime::ShmClusterConfig cont = shm_config();
  cont.workers = 2;  // snapshot was written by 4 workers
  cont.checkpoint_dir = dir;
  cont.resume = true;
  runtime::ShmDataParallelTrainer resumed(shm_factory(), nullptr, cont);
  EXPECT_THROW(resumed.train(ds), std::runtime_error);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace pf::core
