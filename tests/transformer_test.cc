#include "nn/transformer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "models/transformer_mt.h"

namespace pf::nn {
namespace {

TEST(MultiHeadAttention, OutputShape) {
  Rng rng(1);
  MultiHeadAttention attn(16, 4, 0.0f, 0, rng, 1);
  ag::Var x = ag::leaf(rng.randn(Shape{2, 5, 16}));
  ag::Var y = attn.forward(x, x, x, nullptr);
  EXPECT_EQ(y->shape(), (Shape{2, 5, 16}));
}

TEST(MultiHeadAttention, ParamCountVanillaVsLowRank) {
  Rng rng(2);
  MultiHeadAttention dense(32, 4, 0.0f, 0, rng, 1);
  EXPECT_EQ(dense.num_params(), 4 * 32 * 32);  // 4 p^2 d^2 with pd = 32
  MultiHeadAttention lr(32, 4, 0.0f, 8, rng, 1);
  EXPECT_EQ(lr.num_params(), 4 * (32 * 8 + 32 * 8));  // 8 dm r
}

TEST(MultiHeadAttention, CrossAttentionShapes) {
  Rng rng(3);
  MultiHeadAttention attn(8, 2, 0.0f, 0, rng, 1);
  ag::Var q = ag::leaf(rng.randn(Shape{2, 3, 8}));
  ag::Var kv = ag::leaf(rng.randn(Shape{2, 7, 8}));
  ag::Var y = attn.forward(q, kv, kv, nullptr);
  EXPECT_EQ(y->shape(), (Shape{2, 3, 8}));
}

TEST(MultiHeadAttention, MaskBlocksInformation) {
  // With a causal mask, the output at position 0 must not change when a
  // later position's input changes.
  Rng rng(4);
  MultiHeadAttention attn(8, 2, 0.0f, 0, rng, 1);
  attn.train(false);
  Tensor mask = causal_mask(4);

  Tensor x = rng.randn(Shape{1, 4, 8});
  ag::Var y1 = attn.forward(ag::leaf(x), ag::leaf(x), ag::leaf(x), &mask);
  Tensor x2 = x;
  for (int64_t j = 0; j < 8; ++j) x2[3 * 8 + j] += 5.0f;  // perturb pos 3
  ag::Var y2 = attn.forward(ag::leaf(x2), ag::leaf(x2), ag::leaf(x2), &mask);

  for (int64_t j = 0; j < 8; ++j)
    EXPECT_NEAR(y1->value[j], y2->value[j], 1e-4) << "pos 0 leaked";
  // Position 3 output must change.
  float diff = 0;
  for (int64_t j = 0; j < 8; ++j)
    diff += std::fabs(y1->value[3 * 8 + j] - y2->value[3 * 8 + j]);
  EXPECT_GT(diff, 1e-3f);
}

TEST(CausalMask, Structure) {
  Tensor m = causal_mask(3);
  EXPECT_FLOAT_EQ(m.at({0, 0}), 0.0f);
  EXPECT_LT(m.at({0, 1}), -1e8f);
  EXPECT_FLOAT_EQ(m.at({2, 1}), 0.0f);
}

TEST(PositionalEncoding, SinusoidStructure) {
  Tensor pe = positional_encoding(10, 8);
  EXPECT_EQ(pe.shape(), (Shape{10, 8}));
  // Position 0: sin(0)=0, cos(0)=1 alternating.
  EXPECT_NEAR(pe.at({0, 0}), 0.0f, 1e-6);
  EXPECT_NEAR(pe.at({0, 1}), 1.0f, 1e-6);
  // All entries bounded by 1.
  EXPECT_LE(pe.abs_max(), 1.0f + 1e-6f);
  // Different positions get different codes.
  EXPECT_GT(max_abs_diff(slice(pe, 0, 1, 1), slice(pe, 0, 2, 1)), 1e-3f);
}

TEST(FeedForward, ShapeAndParams) {
  Rng rng(5);
  FeedForward ffn(16, 64, 0, rng);
  // W1 + b1 + W2 + b2.
  EXPECT_EQ(ffn.num_params(), 16 * 64 + 64 + 64 * 16 + 16);
  ag::Var y = ffn.forward(ag::leaf(rng.randn(Shape{2, 3, 16})));
  EXPECT_EQ(y->shape(), (Shape{2, 3, 16}));
}

TEST(FeedForward, LowRankParams) {
  Rng rng(6);
  FeedForward ffn(16, 64, 4, rng);
  // Both matrices factorized at rank 4, biases kept.
  EXPECT_EQ(ffn.num_params(),
            (16 * 4 + 64 * 4) + 64 + (64 * 4 + 16 * 4) + 16);
}

TEST(EncoderLayer, ForwardShape) {
  Rng rng(7);
  EncoderLayer enc(16, 4, 0.1f, 0, rng, 1);
  enc.train(false);
  ag::Var y = enc.forward(ag::leaf(rng.randn(Shape{2, 5, 16})), nullptr);
  EXPECT_EQ(y->shape(), (Shape{2, 5, 16}));
}

TEST(DecoderLayer, ForwardShape) {
  Rng rng(8);
  DecoderLayer dec(16, 4, 0.1f, 0, rng, 1);
  dec.train(false);
  ag::Var x = ag::leaf(rng.randn(Shape{2, 3, 16}));
  ag::Var mem = ag::leaf(rng.randn(Shape{2, 6, 16}));
  Tensor tmask = causal_mask(3);
  ag::Var y = dec.forward(x, mem, &tmask, nullptr);
  EXPECT_EQ(y->shape(), (Shape{2, 3, 16}));
}

TEST(TransformerMT, ForwardLogitsShape) {
  Rng rng(9);
  models::TransformerMT model(models::TransformerConfig::tiny(), rng);
  model.train(false);
  std::vector<int64_t> src = {3, 4, 5, 2, 0, 0, 6, 7, 8, 9, 2, 0};  // 2x6
  std::vector<int64_t> tgt = {1, 10, 11, 0, 1, 12, 13, 14};          // 2x4
  ag::Var logits = model.forward(src, 6, tgt, 4, 2);
  EXPECT_EQ(logits->shape(), (Shape{8, 64}));
}

TEST(TransformerMT, GreedyDecodeTerminatesAndStartsWithBos) {
  Rng rng(10);
  models::TransformerMT model(models::TransformerConfig::tiny(), rng);
  model.train(false);
  std::vector<int64_t> src = {3, 4, 5, 2};
  auto out = model.greedy_decode(src, 4, 1, 1, 2, 8);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0][0], 1);
  EXPECT_LE(out[0].size(), 8u);
}

TEST(TransformerMT, GradientsReachEmbedding) {
  Rng rng(11);
  models::TransformerMT model(models::TransformerConfig::tiny(), rng);
  std::vector<int64_t> src = {3, 4, 2, 0};
  std::vector<int64_t> tgt = {1, 5, 6};
  ag::Var logits = model.forward(src, 4, tgt, 3, 1);
  ag::Var loss = ag::cross_entropy(logits, {5, 6, 2});
  ag::backward(loss);
  // Tied embedding gets gradient from input, positional path, and output
  // projection.
  bool found = false;
  for (nn::Param* p : model.parameters())
    if (p->name == "weight" && p->var->value.size(0) == 64) {
      EXPECT_GT(p->var->grad.norm(), 0.0f);
      found = true;
    }
  EXPECT_TRUE(found);
}

TEST(TransformerMT, HybridHasFewerParams) {
  Rng rng(12);
  models::TransformerMT vanilla(models::TransformerConfig::tiny(0), rng);
  models::TransformerMT hybrid(models::TransformerConfig::tiny(2), rng);
  EXPECT_LT(hybrid.num_params(), vanilla.num_params());
}

TEST(MakeProjection, SelectsKind) {
  Rng rng(13);
  auto dense = make_projection(8, 8, 0, false, rng);
  EXPECT_EQ(dense->type_name(), "Linear");
  auto lr = make_projection(8, 8, 2, false, rng);
  EXPECT_EQ(lr->type_name(), "LowRankLinear");
}

}  // namespace
}  // namespace pf::nn

// (appended) beam-search decoding.
namespace pf::nn {
namespace {

TEST(BeamSearch, Width1MatchesGreedy) {
  Rng rng(40);
  models::TransformerMT m(models::TransformerConfig::tiny(), rng);
  m.train(false);
  std::vector<int64_t> src = {3, 7, 5, 2};
  auto greedy = m.greedy_decode(src, 4, 1, 1, 2, 10);
  auto beam = m.beam_decode(src, 4, 1, 2, 10, /*beam_width=*/1);
  // Strip trailing padding from the greedy output before comparing.
  std::vector<int64_t> g = greedy[0];
  while (!g.empty() && g.back() == 0) g.pop_back();
  EXPECT_EQ(beam, g);
}

TEST(BeamSearch, WiderBeamNeverScoresWorse) {
  // Beam width 4's chosen hypothesis must have >= the length-normalized
  // log-prob of the greedy one; proxy check: it exists, starts with BOS,
  // and terminates within budget.
  Rng rng(41);
  models::TransformerMT m(models::TransformerConfig::tiny(), rng);
  m.train(false);
  std::vector<int64_t> src = {4, 9, 2};
  auto beam = m.beam_decode(src, 3, 1, 2, 8, 4);
  EXPECT_EQ(beam.front(), 1);
  EXPECT_LE(beam.size(), 8u);
}

}  // namespace
}  // namespace pf::nn
