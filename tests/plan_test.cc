// src/plan: alpha-beta simulator vs the discrete-event ring sim, the
// calibration fit, and the planner's contracts (determinism, monotonicity,
// vanilla degeneracy, and the paper's qualitative outcome on slow links).
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "dist/cost_model.h"
#include "dist/ring_sim.h"
#include "plan/calibrate.h"
#include "plan/comm_sim.h"
#include "plan/frontier.h"
#include "plan/model_costs.h"
#include "plan/planner.h"
#include "plan/serve_density.h"

namespace {

using namespace pf;

// --- closed form vs discrete-event simulation -------------------------

TEST(PlanCommSim, ClosedFormMatchesRingSimAllreduce) {
  // The satellite contract: alpha-beta closed forms within 1% of the
  // event-driven ring schedule across a (p, bytes) sweep. The only
  // divergence is ceil(bytes/p) chunk rounding, negligible at >= 64 KB.
  const dist::RingLink link{};  // shared default constants
  for (int p : {2, 3, 4, 8, 16}) {
    for (int64_t bytes : {int64_t{64} << 10, int64_t{1} << 20,
                          int64_t{16} << 20, int64_t{97} << 20}) {
      const double closed = plan::collective_seconds_flat(
          plan::Coll::kAllreduce, bytes, p, link.latency_s,
          link.bandwidth_bytes_per_s);
      const double sim =
          dist::simulate_ring_allreduce(bytes, p, {link}).makespan_s;
      EXPECT_NEAR(closed, sim, 0.01 * sim)
          << "p=" << p << " bytes=" << bytes;
    }
  }
}

TEST(PlanCommSim, ClosedFormMatchesRingSimAllgather) {
  const dist::RingLink link{};
  for (int p : {2, 4, 8, 16}) {
    for (int64_t bytes : {int64_t{64} << 10, int64_t{4} << 20}) {
      const double closed = plan::collective_seconds_flat(
          plan::Coll::kAllgather, bytes, p, link.latency_s,
          link.bandwidth_bytes_per_s);
      const double sim =
          dist::simulate_ring_allgather(bytes, p, {link}).makespan_s;
      EXPECT_NEAR(closed, sim, 0.01 * sim)
          << "p=" << p << " bytes=" << bytes;
    }
  }
}

TEST(PlanCommSim, FlatFormsAreExpressionIdenticalToCostModel) {
  // Bitwise, not approximate: the planner's flat allreduce/allgather must
  // BE dist::CostModel's formulas, or rank-ratio-1.0 plans drift from the
  // DDP predictions bench_fig4_distributed prints.
  for (int p : {2, 5, 16, 33}) {
    dist::CostModel cm;
    cm.nodes = p;
    for (int64_t bytes : {int64_t{1}, int64_t{12345678}, int64_t{1} << 28}) {
      EXPECT_EQ(plan::collective_seconds_flat(plan::Coll::kAllreduce, bytes,
                                              p, cm.latency_s,
                                              cm.bandwidth_bytes_per_s),
                cm.allreduce_seconds(bytes));
      EXPECT_EQ(plan::collective_seconds_flat(plan::Coll::kAllgather, bytes,
                                              p, cm.latency_s,
                                              cm.bandwidth_bytes_per_s),
                cm.allgather_seconds(bytes));
    }
  }
}

TEST(PlanCommSim, HierarchicalIsBoundedByFlatExtremes) {
  // A two-level allreduce must cost at least the all-fast flat ring and at
  // most the all-slow flat ring, and a single-rank-per-node profile must
  // degenerate to the flat inter-node form exactly.
  dist::HardwareProfile hw = dist::HardwareProfile::rdma_100g();
  ASSERT_GT(hw.workers_per_node, 1);
  const int p = 16;
  const int64_t bytes = int64_t{44} << 20;
  for (plan::Coll c : {plan::Coll::kAllreduce, plan::Coll::kReduceScatter,
                       plan::Coll::kAllgather, plan::Coll::kBroadcast}) {
    const double two_level = plan::collective_seconds(c, bytes, p, hw);
    const double all_fast = plan::collective_seconds_flat(
        c, bytes, p, hw.intra_alpha_s, hw.intra_bandwidth_bytes_per_s);
    const double all_slow = plan::collective_seconds_flat(
        c, bytes, p, hw.alpha_s, hw.bandwidth_bytes_per_s);
    EXPECT_GE(two_level, all_fast) << plan::coll_name(c);
    EXPECT_LE(two_level, all_slow * 1.5) << plan::coll_name(c);
  }

  dist::HardwareProfile flat = hw;
  flat.workers_per_node = 1;
  EXPECT_EQ(plan::collective_seconds(plan::Coll::kAllreduce, bytes, p, flat),
            plan::collective_seconds_flat(plan::Coll::kAllreduce, bytes, p,
                                          flat.alpha_s,
                                          flat.bandwidth_bytes_per_s));
  // Inside one node, only the intra link is used.
  EXPECT_EQ(plan::collective_seconds(plan::Coll::kAllreduce, bytes,
                                     hw.workers_per_node, hw),
            plan::collective_seconds_flat(plan::Coll::kAllreduce, bytes,
                                          hw.workers_per_node,
                                          hw.intra_alpha_s,
                                          hw.intra_bandwidth_bytes_per_s));
}

TEST(PlanCommSim, OverlapEpochEqualsDdpModelOnFlatProfile) {
  const dist::HardwareProfile hw = dist::HardwareProfile::cloud_10g();
  for (int p : {4, 16}) {
    const dist::CostModel cm = dist::cost_model_from(hw, p);
    for (int64_t bytes : {int64_t{5} << 20, int64_t{44} << 20}) {
      for (double compute : {0.05, 1.5}) {
        EXPECT_EQ(plan::overlap_epoch_seconds(compute, bytes, p, hw),
                  dist::ddp_epoch_seconds(compute, bytes, cm));
      }
    }
  }
}

// --- shared hardware constants (satellite 1) --------------------------

TEST(PlanHardware, DefaultsShareOneSetOfConstants) {
  const dist::CostModel cm{};
  const dist::RingLink link{};
  EXPECT_EQ(cm.latency_s, dist::kDefaultLinkLatencyS);
  EXPECT_EQ(cm.bandwidth_bytes_per_s, dist::kDefaultLinkBandwidthBytesPerS);
  EXPECT_EQ(link.latency_s, dist::kDefaultLinkLatencyS);
  EXPECT_EQ(link.bandwidth_bytes_per_s,
            dist::kDefaultLinkBandwidthBytesPerS);

  const dist::HardwareProfile hw = dist::HardwareProfile::cloud_10g();
  EXPECT_EQ(hw.alpha_s, dist::kDefaultLinkLatencyS);
  EXPECT_EQ(hw.bandwidth_bytes_per_s, dist::kDefaultLinkBandwidthBytesPerS);

  const dist::CostModel projected = dist::cost_model_from(hw, 7);
  EXPECT_EQ(projected.nodes, 7);
  EXPECT_EQ(projected.latency_s, hw.alpha_s);
  EXPECT_EQ(projected.bandwidth_bytes_per_s, hw.bandwidth_bytes_per_s);
  const dist::RingLink plink = dist::link_from(hw);
  EXPECT_EQ(plink.latency_s, hw.alpha_s);
  EXPECT_EQ(plink.bandwidth_bytes_per_s, hw.bandwidth_bytes_per_s);
}

// --- calibration fit vs the event simulation --------------------------

TEST(PlanCalibrate, FitRecoversRingSimConstants) {
  // Feed the OLS fit timings GENERATED by the discrete-event simulation at
  // known link constants; it must recover them to < 1%. This validates the
  // solver against the simulator without any wall-clock noise.
  dist::RingLink link;
  link.latency_s = 120e-6;
  link.bandwidth_bytes_per_s = 2.5e9;
  const int p = 4;
  std::vector<std::pair<int64_t, double>> samples;
  for (int64_t bytes :
       {int64_t{256} << 10, int64_t{1} << 20, int64_t{4} << 20,
        int64_t{16} << 20}) {
    samples.emplace_back(
        bytes, dist::simulate_ring_allreduce(bytes, p, {link}).makespan_s);
  }
  const plan::LinkCalibration fit = plan::fit_alpha_beta(samples, p);
  EXPECT_NEAR(fit.alpha_s, link.latency_s, 0.01 * link.latency_s);
  EXPECT_NEAR(fit.bandwidth_bytes_per_s, link.bandwidth_bytes_per_s,
              0.01 * link.bandwidth_bytes_per_s);
  EXPECT_LT(fit.max_residual, 0.01);
}

// --- model cost introspection -----------------------------------------

TEST(PlanModelCosts, IntrospectsRealModels) {
  const plan::ModelCosts vanilla =
      plan::describe_model("resnet18", 0.25, 10, 16, 1.0, 0);
  EXPECT_TRUE(vanilla.vanilla());
  EXPECT_GT(vanilla.params, 0);
  EXPECT_EQ(vanilla.params, vanilla.dense_params);
  EXPECT_EQ(vanilla.grad_bytes(), vanilla.params * 4);
  EXPECT_GT(vanilla.fwd_flops, 0);
  EXPECT_DOUBLE_EQ(vanilla.step_flops(32), 3.0 * vanilla.fwd_flops * 32);
  EXPECT_EQ(vanilla.svd_seconds(1e9), 0);  // no factorization, no SVD

  const plan::ModelCosts hybrid =
      plan::describe_model("resnet18", 0.25, 10, 16, 0.25, 2);
  EXPECT_FALSE(hybrid.vanilla());
  EXPECT_LT(hybrid.params, vanilla.params);     // fewer params...
  EXPECT_LT(hybrid.fwd_flops, vanilla.fwd_flops);  // ...and fewer FLOPs
  EXPECT_EQ(hybrid.dense_params, vanilla.params);  // SVD input is the dense net
  EXPECT_GT(hybrid.svd_seconds(1e9), 0);

  // More aggressive factorization strictly shrinks the payload.
  const plan::ModelCosts deeper =
      plan::describe_model("resnet18", 0.25, 10, 16, 0.25, 1);
  EXPECT_LT(deeper.params, hybrid.params);
}

// --- recorded frontier ------------------------------------------------

TEST(PlanFrontier, RecordedPointsAndComposition) {
  // Recorded points reproduce exactly...
  EXPECT_DOUBLE_EQ(plan::predicted_accuracy(1.0, 0, 0), 0.993);
  EXPECT_DOUBLE_EQ(plan::predicted_accuracy(0.25, 2, 2), 0.993);
  EXPECT_DOUBLE_EQ(plan::predicted_accuracy(0.25, 2, 0), 0.933);
  // ...warm-up mitigation is monotone from scratch to the anchor...
  EXPECT_LT(plan::predicted_accuracy(0.25, 2, 0),
            plan::predicted_accuracy(0.25, 2, 1));
  EXPECT_LT(plan::predicted_accuracy(0.25, 2, 1),
            plan::predicted_accuracy(0.25, 2, 2));
  // ...and a config extreme on TWO axes pays both penalties.
  EXPECT_LT(plan::predicted_accuracy(0.125, 1, 2),
            plan::predicted_accuracy(0.125, 2, 2));
  EXPECT_LT(plan::predicted_accuracy(0.125, 1, 2),
            plan::predicted_accuracy(0.25, 1, 2));
}

// --- planner contracts ------------------------------------------------

TEST(PlanPlanner, DeterministicPlans) {
  plan::PlannerRequest req;  // defaults: resnet18, cloud-10g
  const plan::Plan a = plan::make_plan(req);
  const plan::Plan b = plan::make_plan(req);
  ASSERT_EQ(a.candidates.size(), b.candidates.size());
  for (size_t i = 0; i < a.candidates.size(); ++i) {
    EXPECT_EQ(a.candidates[i].total_s, b.candidates[i].total_s);
    EXPECT_EQ(a.candidates[i].config_string(),
              b.candidates[i].config_string());
    EXPECT_EQ(a.candidates[i].method, b.candidates[i].method);
  }
  EXPECT_EQ(a.summary(32), b.summary(32));  // bitwise-identical rendering
}

TEST(PlanPlanner, FasterLinksNeverIncreaseModeledTime) {
  const plan::ModelCosts costs =
      plan::describe_model("resnet18", 1.0, 10, 32, 1.0, 0);
  dist::HardwareProfile slow = dist::HardwareProfile::commodity_1g();
  dist::HardwareProfile fast = slow;
  fast.alpha_s /= 10;
  fast.bandwidth_bytes_per_s *= 10;
  for (const plan::MethodCosts& mc : plan::recorded_methods()) {
    for (int p : {4, 16}) {
      for (bool overlap : {true, false}) {
        const double t_slow = plan::modeled_epoch_seconds(
            costs, mc, p, 1 << 20, 32, 50000, slow, overlap);
        const double t_fast = plan::modeled_epoch_seconds(
            costs, mc, p, 1 << 20, 32, 50000, fast, overlap);
        EXPECT_LE(t_fast, t_slow) << mc.method << " p=" << p;
      }
    }
  }
}

TEST(PlanPlanner, VanillaDegeneratesToDdpPrediction) {
  // rank ratio 1.0 + plain allreduce + flat profile must reproduce the
  // bench_fig4_distributed vanilla prediction: steps x ddp_epoch_seconds.
  const plan::ModelCosts costs =
      plan::describe_model("resnet18", 1.0, 10, 32, 1.0, 0);
  const dist::HardwareProfile hw = dist::HardwareProfile::cloud_10g();
  const int p = 16;
  const int64_t batch = 32, bucket = 25 << 20;
  const double images = 50000;
  const double modeled = plan::modeled_epoch_seconds(
      costs, plan::method_costs("allreduce"), p, bucket, batch, images, hw,
      /*overlap=*/true);
  const double compute = costs.step_flops(batch) / hw.flops_per_s;
  const double steps = images / (static_cast<double>(p) * batch);
  const double expected =
      steps *
      dist::ddp_epoch_seconds(compute, costs.grad_bytes(),
                              dist::cost_model_from(hw, p), bucket);
  EXPECT_NEAR(modeled, expected, 1e-12 * expected);
}

TEST(PlanPlanner, HybridWinsOnCloud10g) {
  // The acceptance scenario: on the calibrated-constants 10 Gbps profile,
  // the planner must choose hybrid low-rank training over BOTH the vanilla
  // allreduce baseline and every always-on gradient compressor.
  plan::PlannerRequest req;  // cloud-10g defaults
  const plan::Plan p = plan::make_plan(req);
  ASSERT_TRUE(p.has_feasible());
  const plan::CandidateEval& best = p.best();
  EXPECT_LT(best.rank_ratio, 1.0);
  EXPECT_GT(best.hybrid_k, 0);

  double vanilla_allreduce = -1, best_compressor = -1;
  for (const plan::CandidateEval& c : p.candidates) {
    if (c.rank_ratio < 1.0) continue;
    if (c.method == "allreduce") {
      if (vanilla_allreduce < 0 || c.total_s < vanilla_allreduce)
        vanilla_allreduce = c.total_s;
    } else if (best_compressor < 0 || c.total_s < best_compressor) {
      best_compressor = c.total_s;
    }
  }
  ASSERT_GT(vanilla_allreduce, 0);
  ASSERT_GT(best_compressor, 0);
  EXPECT_LT(best.total_s, vanilla_allreduce);
  EXPECT_LT(best.total_s, best_compressor);
}

TEST(PlanPlanner, AccuracyFloorBinds) {
  plan::PlannerRequest req;
  req.accuracy_floor = 0.99;  // only the K=4 knee configs clear this
  const plan::Plan tight = plan::make_plan(req);
  ASSERT_TRUE(tight.has_feasible());
  EXPECT_GE(tight.best().predicted_acc, 0.99);

  req.accuracy_floor = 0.96;
  const plan::Plan loose = plan::make_plan(req);
  ASSERT_TRUE(loose.has_feasible());
  // A looser floor can only speed up (or tie) the chosen plan.
  EXPECT_LE(loose.best().total_s, tight.best().total_s);

  req.accuracy_floor = 1.5;  // unattainable
  const plan::Plan none = plan::make_plan(req);
  EXPECT_FALSE(none.has_feasible());
  EXPECT_NE(none.summary().find("none feasible"), std::string::npos);
  EXPECT_THROW(none.best(), std::runtime_error);
}

TEST(PlanPlanner, ComputeSlotsOversubscriptionScalesCompute) {
  // p workers on c < p cores: compute serializes by ceil(p/c). With free
  // communication the epoch must scale by exactly that factor.
  const plan::ModelCosts costs =
      plan::describe_model("resnet18", 0.25, 10, 16, 1.0, 0);
  dist::HardwareProfile hw = dist::HardwareProfile::cloud_10g();
  hw.alpha_s = 0;
  hw.bandwidth_bytes_per_s = 1e18;
  const double dedicated = plan::modeled_epoch_seconds(
      costs, plan::method_costs("allreduce"), 4, 1 << 20, 32, 1024, hw,
      /*overlap=*/false);
  hw.compute_slots = 1;
  const double shared = plan::modeled_epoch_seconds(
      costs, plan::method_costs("allreduce"), 4, 1 << 20, 32, 1024, hw,
      /*overlap=*/false);
  EXPECT_NEAR(shared, 4.0 * dedicated, 1e-9 * shared);
}

TEST(PlanServeDensity, QuantizedFormatsPackMoreModelsPerGB) {
  const dist::HardwareProfile hw = dist::HardwareProfile::cloud_10g();
  const plan::ServeDensity d =
      plan::serve_density("resnet18", 0.25, 10, 0.25, 2, hw);
  ASSERT_GT(d.fp32_bytes, 0);
  // Quantized formats strictly shrink the resident engine; int8 must clear
  // the paper-table 3x density target (weights are ~4x smaller, biases and
  // BN stats stay fp32).
  EXPECT_LT(d.int8_bytes, d.fp32_bytes);
  EXPECT_LT(d.bf16_bytes, d.fp32_bytes);
  EXPECT_LT(d.int8_bytes, d.bf16_bytes);
  EXPECT_GE(d.int8_per_gb / d.fp32_per_gb, 3.0);
  // models-that-fit is the serving-memory term divided by the footprint.
  EXPECT_EQ(d.fp32_models, hw.serve_mem_bytes / d.fp32_bytes);
  EXPECT_EQ(d.int8_models, hw.serve_mem_bytes / d.int8_bytes);
  EXPECT_GT(d.int8_models, d.fp32_models);
}

TEST(PlanServeDensity, DeterministicAndProfileScaled) {
  const dist::HardwareProfile big = dist::HardwareProfile::rdma_100g();
  const dist::HardwareProfile small = dist::HardwareProfile::commodity_1g();
  const plan::ServeDensity a =
      plan::serve_density("resnet18", 0.25, 10, 0.25, 2, big);
  const plan::ServeDensity b =
      plan::serve_density("resnet18", 0.25, 10, 0.25, 2, big);
  // Same request twice -> identical introspected footprints (the builder
  // seeds its own Rng; no global state leaks in).
  EXPECT_EQ(a.fp32_bytes, b.fp32_bytes);
  EXPECT_EQ(a.int8_bytes, b.int8_bytes);
  EXPECT_EQ(a.bf16_bytes, b.bf16_bytes);
  // Density per GB is profile-independent; the fleet-size term scales with
  // the profile's serving memory.
  const plan::ServeDensity c =
      plan::serve_density("resnet18", 0.25, 10, 0.25, 2, small);
  EXPECT_EQ(a.int8_bytes, c.int8_bytes);
  EXPECT_GT(a.int8_models, c.int8_models);
}

}  // namespace
