// Fault-tolerance bench: what crash-safety actually costs. Three tables:
// (1) snapshot overhead -- atomic weights + TrainState writes and the
// resume load, in ms and bytes, against the epoch they protect; (2) shm
// data-parallel training under injected worker kills and straggler delays,
// showing recovery wall-clock and that the final weights stay bitwise
// identical to the fault-free run; (3) batched serving under injected
// request drops, with and without retry/backoff, showing the completion
// rate recover at a measured latency cost. No paper artifact corresponds
// to this table -- it certifies the repo's own recovery guarantees
// (DESIGN.md section 9) stay cheap enough to leave on.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common.h"
#include "core/checkpoint.h"
#include "fault/fault.h"
#include "optim/optim.h"
#include "runtime/shm_cluster.h"
#include "serve/frozen.h"
#include "serve/server.h"

namespace {

using namespace bench;

constexpr int64_t kFaultHw = 16;

std::string tmp_dir(const char* name) {
  const std::string d =
      (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(d);
  return d;
}

int64_t file_size(const std::string& path) {
  return static_cast<int64_t>(std::filesystem::file_size(path));
}

bool bitwise_equal(const pf::Tensor& a, const pf::Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(std::as_const(a).data(), std::as_const(b).data(),
                     static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

pf::runtime::ShmClusterConfig cluster_config(int epochs) {
  pf::runtime::ShmClusterConfig scfg;
  scfg.workers = 4;
  scfg.bucket_bytes = 64 << 10;
  scfg.train.epochs = epochs;
  scfg.train.global_batch = 32;
  scfg.train.lr = 0.05f;
  scfg.train.seed = 3;
  return scfg;
}

void snapshot_overhead_table(const pf::data::SyntheticImages& ds) {
  std::printf("\n-- Snapshot overhead (ResNet-18 x0.25, SGD momentum) --\n");
  pf::core::VisionModelFactory factory = make_resnet18(0.25, 0);
  pf::Rng rng(1);
  auto model = factory(rng);
  pf::optim::SGD opt(model->parameters(), 0.05f, 0.9f, 1e-4f);

  // One real epoch so momentum buffers and BN stats are non-trivial, and
  // so the epoch time the snapshot protects is measured, not guessed.
  pf::metrics::Timer epoch_t;
  {
    model->train(true);
    for (const pf::data::ImageBatch& b : ds.train_batches(32, 0)) {
      model->zero_grad();
      pf::ag::Var loss = pf::ag::cross_entropy(
          model->forward(pf::ag::leaf(b.images)), b.labels);
      pf::ag::backward(loss);
      opt.step();
    }
  }
  const double epoch_s = epoch_t.seconds();

  const std::string dir = tmp_dir("pf_bench_fault_snapshot");
  pf::core::TrainState st;
  st.next_epoch = 1;
  st.rng = rng.state();
  pf::core::capture_optimizer(opt, st);

  constexpr int kReps = 5;
  pf::metrics::Timer save_t;
  for (int i = 0; i < kReps; ++i) pf::core::save_snapshot(*model, st, dir);
  const double save_ms = save_t.seconds() * 1e3 / kReps;

  pf::Rng rng2(99);
  auto loaded = factory(rng2);
  pf::metrics::Timer load_t;
  pf::core::TrainState got;
  for (int i = 0; i < kReps; ++i)
    got = pf::core::load_snapshot(*loaded, dir);
  const double load_ms = load_t.seconds() * 1e3 / kReps;

  const pf::core::SnapshotPaths paths = pf::core::snapshot_paths(dir);
  pf::metrics::Table t({"op", "ms", "bytes", "% of epoch"});
  t.add_row({"save snapshot (atomic)", pf::metrics::fmt(save_ms),
             pf::metrics::fmt_bytes(file_size(paths.model) +
                                    file_size(paths.state)),
             pf::metrics::fmt(100.0 * save_ms / 1e3 / epoch_s) + "%"});
  t.add_row({"load + verify snapshot", pf::metrics::fmt(load_ms), "-",
             pf::metrics::fmt(100.0 * load_ms / 1e3 / epoch_s) + "%"});
  t.print();
  std::printf("epoch protected: %.2fs; weights restored bitwise: %s\n",
              epoch_s,
              bitwise_equal(model->flat_params(), loaded->flat_params())
                  ? "yes"
                  : "NO");
  std::filesystem::remove_all(dir);
}

void shm_recovery_table(const pf::data::SyntheticImages& ds) {
  std::printf("\n-- Shm data-parallel training under injected faults --\n");
  pf::core::VisionModelFactory factory = make_resnet18(0.125, 0);

  struct Scenario {
    std::string name;
    pf::fault::Plan plan;
  };
  std::vector<Scenario> scenarios;
  scenarios.push_back({"fault-free", pf::fault::Plan()});
  {
    pf::fault::Plan p(13);
    p.kill_worker(1, 1).kill_worker(3, 2);
    scenarios.push_back({"2 worker kills", p});
  }
  {
    pf::fault::Plan p(13);
    p.delay_worker(2, 0, 25.0).delay_worker(0, 3, 25.0);
    scenarios.push_back({"2 stragglers (25ms)", p});
  }

  pf::Tensor baseline;
  pf::metrics::Table t({"scenario", "train s", "fault s", "kills", "delays",
                        "recoveries", "bitwise = fault-free"});
  for (Scenario& sc : scenarios) {
    pf::metrics::reset_fault_stats();
    pf::runtime::ShmClusterConfig scfg = cluster_config(2);
    scfg.fault = sc.plan;
    pf::runtime::ShmDataParallelTrainer trainer(factory, nullptr, scfg);
    pf::metrics::Timer wall;
    (void)trainer.train(ds);
    const double train_s = wall.seconds();
    const pf::Tensor params = trainer.model().flat_params();
    if (sc.name == "fault-free") baseline = params;
    const pf::fault::FaultStats s = pf::metrics::fault_stats();
    t.add_row({sc.name, pf::metrics::fmt(train_s),
               pf::metrics::fmt(trainer.fault_seconds(), 4),
               pf::metrics::fmt_int(static_cast<int64_t>(s.injected_kills)),
               pf::metrics::fmt_int(static_cast<int64_t>(s.injected_delays)),
               pf::metrics::fmt_int(static_cast<int64_t>(s.recoveries)),
               bitwise_equal(baseline, params) ? "yes" : "NO"});
  }
  t.print();
}

void serve_retry_table() {
  std::printf("\n-- Batched serving under injected request drops --\n");
  pf::core::VisionModelFactory factory = make_resnet18(0.25, 0);
  pf::Rng rng(6);
  pf::serve::FrozenModel frozen(factory(rng), "bench-fault");
  frozen.prime(pf::Shape{3, kFaultHw, kFaultHw}, 8);

  struct Scenario {
    std::string name;
    double drop_p;
    int max_attempts;
  };
  const std::vector<Scenario> scenarios = {
      {"no faults", 0.0, 1},
      {"drop 20%, no retry", 0.2, 1},
      {"drop 20%, retry<=8", 0.2, 8},
  };

  pf::metrics::Table t({"scenario", "completed", "drops", "retries",
                        "recoveries", "s"});
  for (const Scenario& sc : scenarios) {
    pf::metrics::reset_fault_stats();
    pf::serve::ServerConfig cfg;
    cfg.workers = 2;
    cfg.batcher.max_batch = 8;
    cfg.batcher.deadline_ms = 0.5;
    if (sc.drop_p > 0) {
      cfg.fault = pf::fault::Plan(21);
      cfg.fault.drop_requests(sc.drop_p);
    }
    pf::serve::Server server(frozen, cfg);
    server.start();
    pf::serve::ClosedLoopConfig lg;
    lg.clients = 4;
    lg.requests_per_client = 32;
    lg.max_attempts = sc.max_attempts;
    pf::metrics::Timer wall;
    const int64_t done = pf::serve::run_closed_loop(
        server,
        [](uint64_t id) {
          pf::Rng r(id + 500);
          return pf::serve::make_request(
              id, r.randn(pf::Shape{3, kFaultHw, kFaultHw}));
        },
        lg);
    server.stop();
    const pf::fault::FaultStats s = pf::metrics::fault_stats();
    t.add_row({sc.name,
               pf::metrics::fmt_int(done) + "/128",
               pf::metrics::fmt_int(static_cast<int64_t>(s.dropped_requests)),
               pf::metrics::fmt_int(static_cast<int64_t>(s.retries)),
               pf::metrics::fmt_int(static_cast<int64_t>(s.recoveries)),
               pf::metrics::fmt(wall.seconds())});
  }
  t.print();
  pf::metrics::reset_fault_stats();
}

}  // namespace

int main() {
  banner("Fault injection & crash-safe checkpointing",
         "no paper table -- certifies this repo's recovery guarantees "
         "(DESIGN.md section 9)",
         "synthetic CIFAR-like data; ResNet-18 at reduced width");
  auto ds = cifar_like(10, kFaultHw, 64, 32);
  snapshot_overhead_table(ds);
  shm_recovery_table(ds);
  serve_retry_table();
  return 0;
}
