// The `pf plan` auto-tuner exercised end to end: best-config tables across
// simulated hardware profiles, and a calibrated section that measures THIS
// machine (ring alpha/beta from the trainer's own bucketed reduce, real
// fwd+bwd+opt step time), re-plans on the measured profile, and checks the
// modeled epoch time of the chosen config against a real
// ShmDataParallelTrainer epoch.
//
// The profile grid is the paper's Section 5 story quantified: on slow links
// (10 Gbps cloud, 1 Gbps commodity) hybrid low-rank training wins on
// modeled time-to-accuracy; on 100 Gbps RDMA the dense baseline closes in
// because there is little communication left to save.
//
// --grid-only skips the measured section (used by the pf_bench_plan_smoke
// CI entry when a fast pass is wanted); --json[=path] appends the
// machine-readable report.
#include <cmath>
#include <thread>

#include "common.h"
#include "kernels/kernels.h"
#include "plan/calibrate.h"
#include "plan/comm_sim.h"
#include "plan/planner.h"
#include "plan/serve_density.h"
#include "runtime/shm_cluster.h"

using namespace bench;
namespace plan = pf::plan;

namespace {

plan::PlannerRequest paper_scale_request(const pf::dist::HardwareProfile& hw) {
  plan::PlannerRequest req;
  req.model = "resnet18";
  req.width = 1.0;
  req.classes = 10;
  req.input_hw = 32;
  req.per_worker_batch = 32;
  req.epochs = 8;
  req.images_per_epoch = 50000;
  req.accuracy_floor = 0.96;
  req.hw = hw;
  return req;
}

void report_best(JsonReport& report, const std::string& section,
                 const plan::Plan& p) {
  report.section(section);
  if (!p.has_feasible()) {
    report.kv("feasible", "none");
    return;
  }
  const plan::CandidateEval& b = p.best();
  report.kv("config", b.config_string());
  report.kv("method", b.method);
  report.kv("workers", static_cast<double>(b.workers));
  report.kv("bucket_bytes", static_cast<double>(b.bucket_bytes));
  report.kv("predicted_acc", b.predicted_acc);
  report.kv("epoch_s", b.final_epoch_s);
  report.kv("total_s", b.total_s);
}

}  // namespace

int main(int argc, char** argv) {
  banner("pf plan: cost-model auto-tuner over hardware profiles",
         "Pufferfish Tables 19/20 + Figure 4 as a decision procedure",
         "alpha-beta simulated profiles; calibrated = this machine");
  std::string json_path;
  const bool want_json = JsonReport::wants_json(argc, argv, &json_path);
  JsonReport report;
  bool grid_only = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--grid-only") grid_only = true;

  // --- Section 1: simulated profile grid ------------------------------
  const pf::dist::HardwareProfile profiles[] = {
      pf::dist::HardwareProfile::cloud_10g(),
      pf::dist::HardwareProfile::rdma_100g(),
      pf::dist::HardwareProfile::commodity_1g(),
  };
  metrics::Table grid({"profile", "best config", "method", "p", "acc",
                       "total (model s)", "vs vanilla-allreduce"});
  for (const pf::dist::HardwareProfile& hw : profiles) {
    const plan::PlannerRequest req = paper_scale_request(hw);
    const plan::Plan p = plan::make_plan(req);
    std::printf("%s", p.summary(6).c_str());
    std::printf("\n");
    report_best(report, "profile:" + hw.name, p);

    // The vanilla + plain-allreduce candidate at the same worker count as
    // the winner: the "no planner" baseline a user would run.
    const plan::CandidateEval& b = p.best();
    double vanilla_total = 0;
    for (const plan::CandidateEval& c : p.candidates)
      if (c.rank_ratio >= 1.0 && c.method == "allreduce" &&
          c.workers == b.workers && c.bucket_bytes == b.bucket_bytes)
        vanilla_total = c.total_s;
    grid.add_row({hw.name, b.config_string(), b.method,
                  metrics::fmt(b.workers, 0), metrics::fmt(b.predicted_acc, 3),
                  metrics::fmt(b.total_s, 1),
                  vanilla_total > 0
                      ? metrics::fmt_ratio(vanilla_total / b.total_s)
                      : "-"});
  }
  std::printf("Best plan per profile (modeled time-to-%0.2f-accuracy):\n",
              0.96);
  grid.print();

  // --- Serving density: models-per-GB per profile ---------------------
  // The serving-memory term of each profile divided by the INTROSPECTED
  // engine footprint (built + quantized through src/quant, not estimated),
  // for the paper's hybrid ResNet-18: how many resident engines a fleet
  // node holds at fp32 vs quantized.
  std::printf("\nServing density (hybrid ResNet-18, rank 0.25):\n");
  metrics::Table dens({"profile", "serve mem", "fp32 fit", "int8 fit",
                       "bf16 fit", "int8/fp32 density"});
  for (const pf::dist::HardwareProfile& hw : profiles) {
    const plan::ServeDensity d =
        plan::serve_density("resnet18", 0.25, 10, 0.25, 2, hw);
    dens.add_row({hw.name, metrics::fmt_bytes(hw.serve_mem_bytes),
                  metrics::fmt_int(d.fp32_models),
                  metrics::fmt_int(d.int8_models),
                  metrics::fmt_int(d.bf16_models),
                  metrics::fmt_ratio(d.int8_per_gb / d.fp32_per_gb)});
    report.section("serve_density:" + hw.name);
    report.kv("fp32_bytes", static_cast<double>(d.fp32_bytes));
    report.kv("int8_bytes", static_cast<double>(d.int8_bytes));
    report.kv("bf16_bytes", static_cast<double>(d.bf16_bytes));
    report.kv("fp32_models", static_cast<double>(d.fp32_models));
    report.kv("int8_models", static_cast<double>(d.int8_models));
  }
  dens.print();

  if (grid_only) {
    if (want_json) report.emit("plan", json_path);
    return 0;
  }

  // --- Section 2: calibrated on this machine --------------------------
  std::printf("\nCalibrating this machine...\n");
  const int workers = 4;
  const plan::LinkCalibration link = plan::calibrate_link(workers, 3);
  const double gemm_flops = plan::calibrate_gemm_flops(2);
  std::printf(
      "[calibrate] shm ring (p=%d): alpha=%.3g s  B=%.3g GB/s  "
      "(fit residual %.1f%%)\n",
      link.workers, link.alpha_s, link.bandwidth_bytes_per_s / 1e9,
      100.0 * link.max_residual);
  // Per-backend compute ladder: the calibrated profile tracks whatever
  // backend this process runs with (PF_BACKEND); the ladder shows what the
  // other backend would have given. 0 GF/s = unavailable on this host.
  const double gf_scalar = plan::calibrate_gemm_flops_backend("scalar", 2);
  const double gf_avx2 = plan::calibrate_gemm_flops_backend("avx2", 2);
  std::printf(
      "[calibrate] gemm: %.2f GFLOP/s (active backend: %s; "
      "scalar %.2f, avx2 %.2f)\n",
      gemm_flops / 1e9, pf::kernels::backend_name(), gf_scalar / 1e9,
      gf_avx2 / 1e9);

  pf::dist::HardwareProfile machine;
  machine.name = "calibrated";
  machine.alpha_s = link.alpha_s;
  machine.bandwidth_bytes_per_s = link.bandwidth_bytes_per_s;
  machine.workers_per_node = 1;
  machine.flops_per_s = gemm_flops;
  // The shm workers time-share this host's cores (see HardwareProfile).
  machine.compute_slots =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));

  // Bench-scale model (the size the repo's training benches actually run).
  const double width = 0.25;
  const int64_t hw_px = 16, batch = 32;
  const double step_s = plan::measure_step_seconds(
      plan::vision_factory("resnet18", width, 10, 1.0, 0), batch, hw_px, 3);
  std::printf("[calibrate] vanilla resnet18 w=%.3g step(b=%lld): %.4f s\n",
              width, static_cast<long long>(batch), step_s);

  plan::PlannerRequest creq;
  creq.model = "resnet18";
  creq.width = width;
  creq.input_hw = hw_px;
  creq.per_worker_batch = batch;
  creq.epochs = 8;
  creq.images_per_epoch = 1024;
  creq.accuracy_floor = 0.96;
  creq.hw = machine;
  creq.overlap = false;  // the shm executor reduces synchronously
  creq.measured_step_seconds = step_s;
  creq.workers = {workers};
  const plan::Plan cplan = plan::make_plan(creq);
  std::printf("\n%s\n", cplan.summary(6).c_str());
  report_best(report, "calibrated", cplan);

  // --- Modeled vs measured: one real epoch of the chosen config -------
  const plan::CandidateEval& best = cplan.best();
  const plan::ModelCosts chosen = plan::describe_model(
      "resnet18", width, 10, hw_px, best.rank_ratio, best.hybrid_k);
  // Refine compute with a step measurement of the chosen shape itself (the
  // planner scales the vanilla measurement by FLOP ratio; the direct
  // measurement also sees shape-dependent kernel efficiency).
  const double chosen_step_s = plan::measure_step_seconds(
      plan::vision_factory("resnet18", width, 10, best.rank_ratio,
                           best.hybrid_k),
      batch, hw_px, 3);
  const double modeled_epoch = plan::modeled_epoch_seconds(
      chosen, plan::method_costs("allreduce"), workers, best.bucket_bytes,
      batch, creq.images_per_epoch, machine, /*overlap=*/false,
      chosen_step_s);

  pf::runtime::ShmClusterConfig scfg;
  scfg.workers = workers;
  scfg.train.global_batch = batch * workers;
  scfg.train.epochs = 1;
  scfg.train.threads = 1;  // one compute thread per worker replica
  pf::runtime::ShmDataParallelTrainer trainer(
      plan::vision_factory("resnet18", width, 10, best.rank_ratio,
                           best.hybrid_k),
      nullptr, scfg);
  pf::data::SyntheticImages ds =
      cifar_like(10, hw_px,
                 /*train=*/static_cast<int64_t>(creq.images_per_epoch),
                 /*test=*/32);
  // One untimed warm-up epoch first (mirroring measure_step_seconds'
  // warm-up step): the trainer's first epoch pays pool population,
  // first-touch faults, and worker spin-up. Those one-time costs were
  // noise against scalar-backend compute but are a double-digit share of
  // a vectorized epoch, and the model prices steady state.
  trainer.train_epoch(ds, 0);
  const pf::dist::DistEpochRecord rec = trainer.train_epoch(ds, 1);
  const double measured_epoch = rec.breakdown.wall_s;
  const double rel_err =
      std::abs(modeled_epoch - measured_epoch) / measured_epoch;
  std::printf(
      "verify: chosen config %s  modeled epoch %.3f s  measured shm epoch "
      "%.3f s  (|diff| %.1f%%, acceptance <= 15%%)\n",
      best.config_string().c_str(), modeled_epoch, measured_epoch,
      100.0 * rel_err);

  report.section("verify");
  report.kv("config", best.config_string());
  report.kv("modeled_epoch_s", modeled_epoch);
  report.kv("measured_epoch_s", measured_epoch);
  report.kv("rel_err", rel_err);
  report.kv("link_alpha_s", link.alpha_s);
  report.kv("link_bandwidth_bytes_per_s", link.bandwidth_bytes_per_s);
  report.kv("gemm_flops_per_s", gemm_flops);
  report.kv("kernel_backend", pf::kernels::backend_name());
  report.kv("gemm_flops_per_s_scalar", gf_scalar);
  report.kv("gemm_flops_per_s_avx2", gf_avx2);

  if (want_json) report.emit("plan", json_path);
  return 0;
}
