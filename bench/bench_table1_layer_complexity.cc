// Table 1: parameter counts and computational complexity of vanilla vs
// factorized FC / Conv / LSTM / Attention / FFN layers.
//
// We verify the closed-form counts in Table 1 against *instantiated* layers
// (measured parameter tensors), and report forward MACs from the same
// formulas, sweeping the rank to show the linear-in-r scaling.
#include "common.h"

#include "nn/lstm.h"
#include "nn/transformer.h"

using namespace bench;

int main() {
  banner("Table 1: layer complexity, vanilla vs factorized",
         "Pufferfish Table 1 (Section 2.5)",
         "none -- exact formulas vs instantiated layers");

  Rng rng(1);

  {
    metrics::Table t({"layer", "formula", "formula value",
                      "measured params", "match"});
    const int64_t m = 512, n = 512, r = 128;
    nn::Linear fc(n, m, rng, /*bias=*/false);
    t.add_row({"Vanilla FC (512x512)", "m*n", metrics::fmt_int(m * n),
               metrics::fmt_int(fc.num_params()),
               fc.num_params() == m * n ? "yes" : "NO"});
    nn::LowRankLinear lfc(n, m, r, rng, false);
    t.add_row({"Factorized FC (r=128)", "r(m+n)",
               metrics::fmt_int(r * (m + n)),
               metrics::fmt_int(lfc.num_params()),
               lfc.num_params() == r * (m + n) ? "yes" : "NO"});

    const int64_t ci = 512, co = 512, k = 3, cr = 128;
    nn::Conv2d conv(ci, co, k, 1, 1, rng);
    t.add_row({"Vanilla Conv (512,512,3x3)", "c_in*c_out*k^2",
               metrics::fmt_int(ci * co * k * k),
               metrics::fmt_int(conv.num_params()),
               conv.num_params() == ci * co * k * k ? "yes" : "NO"});
    nn::LowRankConv2d lconv(ci, co, k, 1, 1, cr, rng);
    t.add_row({"Factorized Conv (r=128)", "c_in*r*k^2 + r*c_out",
               metrics::fmt_int(ci * cr * k * k + cr * co),
               metrics::fmt_int(lconv.num_params()),
               lconv.num_params() == ci * cr * k * k + cr * co ? "yes" : "NO"});

    const int64_t d = 1500, h = 1500, lr_rank = 375;
    nn::LSTMLayer lstm(d, h, rng);
    t.add_row({"Vanilla LSTM (1500)", "4(dh + h^2) [+4h bias]",
               metrics::fmt_int(4 * (d * h + h * h) + 4 * h),
               metrics::fmt_int(lstm.num_params()),
               lstm.num_params() == 4 * (d * h + h * h) + 4 * h ? "yes" : "NO"});
    nn::LowRankLSTMLayer llstm(d, h, lr_rank, rng);
    t.add_row({"Factorized LSTM (r=375)", "4dr + 12hr [+4h bias]",
               metrics::fmt_int(4 * d * lr_rank + 12 * h * lr_rank + 4 * h),
               metrics::fmt_int(llstm.num_params()),
               llstm.num_params() ==
                       4 * d * lr_rank + 12 * h * lr_rank + 4 * h
                   ? "yes"
                   : "NO"});

    const int64_t pd = 512, ar = 128;  // p=8, d=64 -> pd = 512
    nn::MultiHeadAttention attn(pd, 8, 0.0f, 0, rng, 1);
    t.add_row({"Vanilla Attention (pd=512)", "4 p^2 d^2",
               metrics::fmt_int(4 * pd * pd),
               metrics::fmt_int(attn.num_params()),
               attn.num_params() == 4 * pd * pd ? "yes" : "NO"});
    nn::MultiHeadAttention lattn(pd, 8, 0.0f, ar, rng, 1);
    t.add_row({"Factorized Attention (r=128)", "8 pd r (combined-matrix)",
               metrics::fmt_int(8 * pd * ar),
               metrics::fmt_int(lattn.num_params()),
               lattn.num_params() == 8 * pd * ar ? "yes" : "NO"});

    nn::FeedForward ffn(pd, 4 * pd, 0, rng);
    t.add_row({"Vanilla FFN (512->2048)", "8 p^2 d^2 [+biases]",
               metrics::fmt_int(8 * pd * pd + 4 * pd + pd),
               metrics::fmt_int(ffn.num_params()),
               ffn.num_params() == 8 * pd * pd + 5 * pd ? "yes" : "NO"});
    nn::FeedForward lffn(pd, 4 * pd, ar, rng);
    t.add_row({"Factorized FFN (r=128)", "10 pd r [+biases]",
               metrics::fmt_int(10 * pd * ar + 5 * pd),
               metrics::fmt_int(lffn.num_params()),
               lffn.num_params() == 10 * pd * ar + 5 * pd ? "yes" : "NO"});
    t.print();
  }

  std::printf("\nRank sweep (factorized conv 512->512 3x3 on a 32x32 map):\n");
  {
    metrics::Table t({"rank r", "params", "vs dense", "fwd MACs", "vs dense"});
    const int64_t ci = 512, co = 512, k = 3, hw = 32;
    const int64_t dense_p = ci * co * k * k;
    const int64_t dense_m = dense_p * hw * hw;
    for (int64_t r : {32, 64, 128, 256, 512}) {
      const int64_t p = ci * r * k * k + r * co;
      const int64_t macs = ci * r * k * k * hw * hw + r * co * hw * hw;
      t.add_row({std::to_string(r), metrics::fmt_int(p),
                 metrics::fmt(100.0 * p / dense_p, 1) + "%",
                 metrics::fmt_int(macs),
                 metrics::fmt(100.0 * macs / dense_m, 1) + "%"});
    }
    t.print();
    std::printf(
        "\nClaim check: params and MACs scale linearly in r; at the paper's "
        "rank ratio 0.25 (r=128) the layer costs ~28%% of dense.\n");
  }
  return 0;
}
