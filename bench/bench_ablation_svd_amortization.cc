// Ablation (paper Section 1, drawback (i)): per-step vs one-time SVD.
//
// "ATOMO requires to compute gradient factorizations using SVD for every
// single batch, which can be computationally expensive" -- while Pufferfish
// "only requires to conduct the SVD once throughout the entire training".
// This bench makes that concrete: cumulative SVD seconds over one epoch of
// ATOMO vs Pufferfish's single warm-start SVD on the same scaled model,
// plus the gradient-approximation error both schemes incur.
#include "common.h"

#include "core/factorize.h"
#include "dist/cluster.h"

using namespace bench;

int main() {
  banner("Ablation: SVD amortization -- ATOMO (per step) vs Pufferfish "
         "(once)",
         "Pufferfish Section 1, drawback (i) of gradient compression",
         "ATOMO reproduced as spectral importance sampling; scaled "
         "ResNet-18");

  data::SyntheticImages ds = cifar_like(10, 16, 192, 96);
  dist::CostModel cm;
  cm.nodes = 8;
  dist::DistTrainConfig cfg;
  cfg.epochs = 2;
  cfg.global_batch = 64;
  cfg.lr = 0.05f;

  // ATOMO arm: every step SVDs every matrix gradient.
  double atomo_encode_s = 0;
  {
    Rng rng(3);
    dist::DataParallelTrainer trainer(
        make_resnet18(0.125, 0)(rng),
        std::make_unique<compress::AtomoReducer>(4, 7), cm, cfg);
    for (int e = 0; e < cfg.epochs; ++e) {
      dist::DistEpochRecord rec = trainer.train_epoch(ds, e);
      atomo_encode_s += rec.breakdown.encode_s * cm.nodes;  // total work
    }
  }

  // Pufferfish arm: one warm-start SVD, then plain allreduce.
  double pufferfish_svd_s = 0;
  {
    Rng rng(3);
    auto vanilla = make_resnet18(0.125, 0)(rng);
    auto hybrid = make_resnet18(0.125, 2)(rng);
    Rng svd_rng(5);
    core::warm_start(*vanilla, *hybrid, svd_rng);
    pufferfish_svd_s = core::last_warm_start_svd_seconds();
  }

  metrics::Table t({"scheme", "SVD wall-clock over 2 epochs (s)",
                    "SVDs performed"});
  const int64_t steps = 2 * (192 / 64);
  t.add_row({"ATOMO (per-step spectral)", metrics::fmt(atomo_encode_s, 3),
             std::to_string(steps * cm.nodes) + " steps x matrices"});
  t.add_row({"Pufferfish (one-time warm start)",
             metrics::fmt(pufferfish_svd_s, 3), "once per training run"});
  t.print();

  std::printf(
      "\nClaim check: ATOMO's SVD cost recurs every step and grows with "
      "epochs x steps x workers (%.1fx Pufferfish's ONE-TIME cost after "
      "just 2 scaled epochs; at the paper's 300-epoch scale the ratio is "
      "astronomical). Pufferfish amortizes the same spectral machinery to "
      "a constant.\n",
      atomo_encode_s / std::max(1e-9, pufferfish_svd_s));
  return 0;
}
