// Table 5: ResNet-50 and WideResNet-50-2 on ImageNet -- params, top-1/top-5
// accuracy, MACs.
//
// Part A: paper-size parameter/MAC accounting (Pufferfish ResNet-50 lands
// exactly on 15,202,344; compression ratios 1.68x / 1.72x match the paper's
// limitations paragraph). Part B: scaled training on the synthetic
// ImageNet-like task with the paper's recipe shape (label smoothing 0.1,
// three-step decay, E_wu = 10/90 of the budget).
#include "common.h"

using namespace bench;

int main() {
  banner("Table 5: ResNet-50 / WideResNet-50-2 on ImageNet",
         "Pufferfish Table 5 (Section 4.2)",
         "ImageNet -> synthetic 20-class 32x32 images; width-scaled models");

  {
    Rng rng(1);
    models::ResNet50 rv(models::ResNetImageNetConfig::resnet50_vanilla(), rng);
    models::ResNet50 rp(models::ResNetImageNetConfig::resnet50_pufferfish(),
                        rng);
    models::ResNet50 wv(models::ResNetImageNetConfig::wrn50_vanilla(), rng);
    models::ResNet50 wp(models::ResNetImageNetConfig::wrn50_pufferfish(), rng);
    metrics::Table t({"model (paper scale)", "# params", "MACs G @224",
                      "compression"});
    t.add_row({"Vanilla ResNet-50", metrics::fmt_int(rv.num_params()),
               metrics::fmt(rv.forward_macs(224, 224) / 1e9, 2), "-"});
    t.add_row({"Pufferfish ResNet-50", metrics::fmt_int(rp.num_params()),
               metrics::fmt(rp.forward_macs(224, 224) / 1e9, 2),
               metrics::fmt_ratio(static_cast<double>(rv.num_params()) /
                                  rp.num_params()) +
                   " (paper: 1.68x)"});
    t.add_row({"Vanilla WRN-50-2", metrics::fmt_int(wv.num_params()),
               metrics::fmt(wv.forward_macs(224, 224) / 1e9, 2), "-"});
    t.add_row({"Pufferfish WRN-50-2", metrics::fmt_int(wp.num_params()),
               metrics::fmt(wp.forward_macs(224, 224) / 1e9, 2),
               metrics::fmt_ratio(static_cast<double>(wv.num_params()) /
                                  wp.num_params()) +
                   " (paper: 1.72x)"});
    t.print();
    std::printf(
        "\nPaper Table 7 row check: Pufferfish ResNet-50 params 15,202,344 "
        "(ours: %s), MACs 3.6 G (ours: %s G).\n\n",
        metrics::fmt_int(rp.num_params()).c_str(),
        metrics::fmt(rp.forward_macs(224, 224) / 1e9, 2).c_str());
  }

  std::printf("Scaled training runs (top-1 / top-5 over the 20-class "
              "ImageNet-like task):\n\n");
  data::SyntheticImages ds = imagenet_like(160, 80);

  struct Arm {
    std::string name;
    bool wide, factorized, amp;
    int seeds;
  };
  const std::vector<Arm> arms = {
      {"Vanilla ResNet-50 (FP32)", false, false, false, 2},
      {"Pufferfish ResNet-50 (FP32)", false, true, false, 2},
      {"Vanilla ResNet-50 (AMP)", false, false, true, 2},
      {"Pufferfish ResNet-50 (AMP)", false, true, true, 2},
      {"Vanilla WRN-50-2 (FP32)", true, false, false, 1},
      {"Pufferfish WRN-50-2 (FP32)", true, true, false, 1},
  };

  metrics::Table t({"model", "# params", "top-1 (%)", "top-5 (%)"});
  for (const Arm& arm : arms) {
    std::vector<double> top1, top5;
    int64_t params = 0;
    for (int s = 0; s < arm.seeds; ++s) {
      core::VisionTrainConfig cfg =
          imagenet_recipe(/*epochs=*/9, /*warmup=*/2,
                          static_cast<uint64_t>(s));
      cfg.amp = arm.amp;
      core::VisionModelFactory vanilla =
          make_resnet50(0.125, false, 20, arm.wide);
      core::VisionModelFactory hybrid =
          arm.factorized ? make_resnet50(0.125, true, 20, arm.wide)
                         : core::VisionModelFactory{};
      core::VisionResult r = core::train_vision(vanilla, hybrid, ds, cfg);
      top1.push_back(100 * r.final_acc);
      top5.push_back(100 * r.final_top5);
      params = r.params;
    }
    t.add_row({arm.name, metrics::fmt_int(params), cell(top1), cell(top5)});
  }
  t.print();
  std::printf(
      "\nClaim check (paper: Pufferfish top-1 within ~0.4%% of vanilla on "
      "both models, stable under AMP): at this tiny test-set size one "
      "sample is 1%%, so expect several points of seed noise -- the claim "
      "is that the factorized arms sit in the same band as vanilla, not "
      "below it, while carrying ~40%% fewer conv5_x parameters.\n");
  return 0;
}
