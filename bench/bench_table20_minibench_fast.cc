// Appendix J, Table 20: the runtime mini-benchmark under the
// *speed-optimized* regime.
//
// The paper's Table 20 re-runs Table 6 with cudnn.benchmark enabled, which
// lets the dense models pick faster kernels and shrinks Pufferfish's edge
// (VGG 1.23x -> 1.01x, ResNet 1.48x -> 1.16x). We have no cuDNN autotuner;
// the closest analogue on a GEMM substrate is the high-arithmetic-intensity
// regime -- large batch, inference only -- where dense GEMMs run closest to
// peak. We report forward-only throughput at batch 64 and expect the same
// qualitative effect: the speedup persists but is smaller than the
// train-time gap of Table 6.
#include "common.h"

using namespace bench;

namespace {

double timed_forward(nn::UnaryModule& model, const Tensor& batch, int reps) {
  ag::NoGradGuard ng;
  model.train(false);
  model.forward(ag::leaf(batch));  // warm-up
  metrics::Timer t;
  for (int i = 0; i < reps; ++i) model.forward(ag::leaf(batch));
  return t.seconds() / reps;
}

}  // namespace

int main(int argc, char** argv) {
  banner("Table 20 (appendix J): mini-benchmark, speed-optimized regime",
         "Pufferfish Table 20",
         "cudnn.benchmark -> forward-only, large-batch GEMM regime");
  std::string json_path;
  const bool want_json = JsonReport::wants_json(argc, argv, &json_path);
  JsonReport report;

  Rng rng(5);
  struct Row {
    std::string name;
    core::VisionModelFactory factory;
    int64_t hw;
  };
  std::vector<Row> rows = {
      {"Vanilla VGG-19", make_vgg(0.125, 0), 32},
      {"Pufferfish VGG-19", make_vgg(0.125, 10), 32},
      {"Vanilla ResNet-18", make_resnet18(0.125, 0), 16},
      {"Pufferfish ResNet-18", make_resnet18(0.125, 2), 16},
  };
  const char* paper_speed[] = {"-", "1.01x", "-", "1.16x"};

  metrics::Table t({"model", "fwd batch-64 time (s)", "speedup",
                    "paper speedup (speed-optimized)"});
  std::vector<std::string> alloc_lines;
  double vanilla_mean = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    Rng data_rng(11);
    Tensor batch = data_rng.randn(Shape{64, 3, rows[i].hw, rows[i].hw});
    auto model = rows[i].factory(rng);
    alloc_section_begin();
    // With PF_TRACE=1 each timed section also prints a "[trace] ..." line,
    // and the last one exports its timeline as chrome://tracing JSON (the
    // CI entry pf_bench_trace_smoke runs this bench that way).
    trace_section_begin();
    const double secs = timed_forward(*model, batch, 3);
    trace_section_end(rows[i].name,
                      i + 1 == rows.size() ? "pf_trace_minibench.json" : "");
    alloc_lines.push_back(
        rows[i].name + ": " +
        metrics::fmt_alloc_stats(metrics::alloc_stats()));
    if (i % 2 == 0) vanilla_mean = secs;
    t.add_row({rows[i].name, metrics::fmt(secs, 4),
               i % 2 == 1 ? metrics::fmt_ratio(vanilla_mean / secs) : "-",
               paper_speed[i]});
    report.section(rows[i].name);
    report.kv("fwd_batch64_s", secs);
    if (i % 2 == 1) report.kv("speedup_vs_vanilla", vanilla_mean / secs);
    report.kv("paper_speedup", paper_speed[i]);
  }
  t.print();
  if (want_json) report.emit("table20_minibench_fast", json_path);
  std::printf("\nAlloc traffic per timed section (pool counters):\n");
  for (const std::string& line : alloc_lines)
    std::printf("[alloc] %s\n", line.c_str());
  std::printf(
      "\nOutcome note: the paper's narrowing (1.48x -> 1.16x on ResNet-18) "
      "comes from cuDNN's autotuner finding faster algorithms for the DENSE "
      "layers; our im2col+GEMM substrate has no per-layer algorithm choice, "
      "so the factorized models' advantage here simply tracks their MAC "
      "reduction and does NOT narrow. Documented as a substrate divergence "
      "in EXPERIMENTS.md -- the directional claim (factorized models never "
      "lose) still holds.\n");
  return 0;
}
