// Table 6: runtime mini-benchmark -- measured per-epoch training time of
// vanilla vs Pufferfish VGG-19 / ResNet-18 on one device, plus MACs.
// (Paper: V100, batch 128, reproducible-cuDNN mode; speedups 1.23x / 1.48x.)
//
// Ours runs the width-scaled models on one CPU core with the same batch
// semantics and reports mean +- std per-epoch seconds over `kEpochs` timed
// epochs, exactly like the paper's table layout.
#include "common.h"

#include "optim/optim.h"

using namespace bench;

namespace {

// One timed training epoch (forward + backward + step over the dataset).
double timed_epoch(nn::UnaryModule& model, optim::SGD& opt,
                   const data::SyntheticImages& ds, int epoch) {
  metrics::Timer t;
  model.train(true);
  for (const data::ImageBatch& b : ds.train_batches(32, epoch)) {
    model.zero_grad();
    ag::Var logits = model.forward(ag::leaf(b.images));
    ag::Var loss = ag::cross_entropy(logits, b.labels);
    ag::backward(loss);
    opt.step();
  }
  return t.seconds();
}

struct Row {
  std::string name;
  core::VisionModelFactory factory;
  int64_t hw;
  int64_t macs_hw;  // spatial size MACs are quoted for
};

}  // namespace

int main() {
  banner("Table 6: runtime mini-benchmark (per-epoch train time)",
         "Pufferfish Table 6 (Section 4.2)",
         "V100 + cuDNN-deterministic -> single CPU core, width-scaled "
         "models, im2col+GEMM conv");

  const int kEpochs = 3;
  std::vector<Row> rows = {
      {"Vanilla VGG-19", make_vgg(0.125, 0), 32, 32},
      {"Pufferfish VGG-19", make_vgg(0.125, 10), 32, 32},
      {"Vanilla ResNet-18", make_resnet18(0.125, 0), 16, 16},
      {"Pufferfish ResNet-18", make_resnet18(0.125, 2), 16, 16},
  };

  metrics::Table t({"model", "epoch time (s)", "speedup", "fwd MACs (M)",
                    "paper epoch time", "paper speedup"});
  const char* paper_time[] = {"13.51 +- 0.02", "11.02 +- 0.01",
                              "18.89 +- 0.07", "12.78 +- 0.03"};
  const char* paper_speed[] = {"-", "1.23x", "-", "1.48x"};

  double vanilla_mean = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    data::SyntheticImages ds = cifar_like(10, rows[i].hw, 96, 32);
    Rng rng(3);
    auto model = rows[i].factory(rng);
    optim::SGD opt(model->parameters(), 0.01f, 0.9f);
    timed_epoch(*model, opt, ds, 0);  // warm-up epoch (allocator, caches)
    std::vector<double> secs;
    for (int e = 1; e <= kEpochs; ++e)
      secs.push_back(timed_epoch(*model, opt, ds, e));
    const metrics::MeanStd ms = metrics::mean_std(secs);
    if (i % 2 == 0) vanilla_mean = ms.mean;
    // MACs of the instantiated scaled model.
    int64_t macs = 0;
    if (auto* vgg = dynamic_cast<models::Vgg19*>(model.get()))
      macs = vgg->forward_macs(rows[i].macs_hw, rows[i].macs_hw);
    if (auto* rn = dynamic_cast<models::ResNet18Cifar*>(model.get()))
      macs = rn->forward_macs(rows[i].macs_hw, rows[i].macs_hw);
    t.add_row({rows[i].name, metrics::fmt_mean_std(ms, 3),
               i % 2 == 1 ? metrics::fmt_ratio(vanilla_mean / ms.mean) : "-",
               metrics::fmt(macs / 1e6, 1), paper_time[i], paper_speed[i]});
  }
  t.print();
  std::printf(
      "\nClaim check: the factorized networks are dense and compact, so the "
      "MAC reduction translates into real wall-clock speedup (paper: 1.23x "
      "VGG, 1.48x ResNet-18; compare the speedup column).\n");
  return 0;
}
