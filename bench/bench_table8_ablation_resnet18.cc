// Table 8: ablation of the accuracy-loss mitigations on ResNet-18/CIFAR-10.
// Three arms x 3 seeds:
//   (a) low-rank from scratch (every block factorized, no warm-up),
//   (b) hybrid without vanilla warm-up,
//   (c) hybrid with vanilla warm-up (the full Pufferfish).
// The paper's ordering: (a) 93.75 < (b) 93.92 < (c) 94.87.
#include "common.h"

using namespace bench;

int main() {
  banner("Table 8: mitigation ablation, ResNet-18 on CIFAR-10",
         "Pufferfish Table 8 (Section 4.2)",
         "CIFAR-10 -> synthetic 16x16 task, width-scaled ResNet-18, 3 seeds");

  data::SyntheticImages ds = cifar_like(10, 16, 200, 100);
  const int kSeeds = 3;

  struct Arm {
    std::string name;
    int first_lowrank_block;  // 1 = all blocks, 2 = hybrid
    int warmup;               // 0 = from scratch
  };
  const std::vector<Arm> arms = {
      {"Low-rank ResNet-18 (scratch)", 1, 0},
      {"Hybrid ResNet-18 (wo. vanilla warm-up)", 2, 0},
      {"Hybrid ResNet-18 (w. vanilla warm-up)", 2, 2},
  };
  const char* paper_loss[] = {"0.31 +- 0.01", "0.30 +- 0.02", "0.25 +- 0.01"};
  const char* paper_acc[] = {"93.75 +- 0.19", "93.92 +- 0.45",
                             "94.87 +- 0.21"};

  metrics::Table t({"method", "test loss", "test acc (%)",
                    "paper loss", "paper acc"});
  std::vector<double> arm_acc_means;
  for (size_t a = 0; a < arms.size(); ++a) {
    std::vector<double> losses, accs;
    for (int s = 0; s < kSeeds; ++s) {
      core::VisionTrainConfig cfg = resnet_recipe(8, arms[a].warmup,
                                                  static_cast<uint64_t>(s));
      core::VisionResult r = core::train_vision(
          make_resnet18(0.125, 0),
          make_resnet18(0.125, arms[a].first_lowrank_block), ds, cfg);
      losses.push_back(r.final_loss);
      accs.push_back(100 * r.final_acc);
    }
    arm_acc_means.push_back(metrics::mean_std(accs).mean);
    t.add_row({arms[a].name, cell(losses), cell(accs), paper_loss[a],
               paper_acc[a]});
  }
  t.print();

  std::printf(
      "\nClaim check (paper ordering: scratch < hybrid < hybrid+warm-up): "
      "our arm means are %.2f / %.2f / %.2f.\n",
      arm_acc_means[0], arm_acc_means[1], arm_acc_means[2]);
  return 0;
}
