// Shared scaffolding for the per-table/per-figure benchmark binaries:
// standard scaled datasets, model factories, and banner printing. Every
// bench prints the paper's reported numbers next to ours so the qualitative
// claim (who wins, by roughly what factor) can be eyeballed directly.
#pragma once

#include <memory>
#include <string>

#include "core/trainer.h"
#include "metrics/metrics.h"
#include "models/lstm_lm.h"
#include "models/resnet.h"
#include "models/transformer_mt.h"
#include "models/vgg.h"

namespace bench {

using namespace pf;

// CIFAR-10 stand-in: 10 classes, 3 channels. VGG benches need hw = 32
// (five max-pools); ResNet benches run at hw = 16 for speed. Noise 0.35
// keeps the task learnable in ~10 epochs on one CPU core while leaving the
// ablation orderings room to show.
data::SyntheticImages cifar_like(int64_t classes = 10, int64_t hw = 32,
                                 int64_t train = 128, int64_t test = 64,
                                 float noise = 0.35f, uint64_t seed = 7);

// ImageNet stand-in: more classes, same CPU-friendly geometry.
data::SyntheticImages imagenet_like(int64_t train = 200, int64_t test = 100);

core::VisionModelFactory make_vgg(double width, int k_first_lowrank,
                                  int64_t classes = 10);
core::VisionModelFactory make_resnet18(double width, int first_lowrank_block,
                                       int64_t classes = 10);
core::VisionModelFactory make_resnet50(double width, bool factorize_stage4,
                                       int64_t classes = 20,
                                       bool wide = false);

// Standard scaled training recipes (kept here so benches agree).
// VGG-19 (deep, residual-free) needs ~14 epochs to take off at this scale;
// ResNet-18 at hw = 16 converges in ~8.
core::VisionTrainConfig vgg_recipe(int epochs = 14, int warmup = 4,
                                   uint64_t seed = 0);
// Tuned recipe for VGG *Pufferfish* runs: the scaled VGG only takes off
// after its first lr decay, so the warm-up must extend past it (switch at
// epoch 13 of 22) or the SVD factorizes near-random weights.
core::VisionTrainConfig vgg_long_recipe(int warmup = 13, uint64_t seed = 0);
core::VisionTrainConfig resnet_recipe(int epochs = 8, int warmup = 2,
                                      uint64_t seed = 0);
core::VisionTrainConfig imagenet_recipe(int epochs = 10, int warmup = 2,
                                        uint64_t seed = 0);

// Prints the bench banner with the paper artifact being reproduced.
void banner(const std::string& title, const std::string& paper_ref,
            const std::string& substitution);

// Allocation-traffic bracketing for a benchmark section. begin() clears the
// buffer pool and zeroes its counters so sections can't subsidize each
// other; end() prints one "[alloc] <label>: ..." line with the pool
// hit/miss/COW counters accumulated since the matching begin().
void alloc_section_begin();
void alloc_section_end(const std::string& label);

// Span-tracing bracketing for a benchmark section, active only when the
// tracer is on (PF_TRACE=1 or trace::set_enabled). begin() drops events
// buffered by earlier sections; end() prints one "[trace] <label>: ..."
// line with the span/dropped counts and, when `json_path` is non-empty,
// writes the section's timeline there as chrome://tracing JSON. No-ops
// (and no output) when tracing is disabled, so bench output is unchanged
// for plain runs.
void trace_section_begin();
void trace_section_end(const std::string& label,
                       const std::string& json_path = "");

// "93.89 +- 0.14"-style cell from per-seed values.
std::string cell(const std::vector<double>& values, int precision = 2);

// Machine-readable bench output: a sectioned key/value report emitted as
// JSON (insertion-ordered, fixed formatting -> byte-stable across runs of
// deterministic benches). Benches opt in via `--json[=path]` on their
// command line; with no path (or "-") the JSON goes to stdout after the
// human tables. Strings are escaped with trace::json_escape -- the same
// writer the chrome://tracing exporter uses.
class JsonReport {
 public:
  // Scans argv for --json or --json=PATH. Returns true when present and
  // stores the path ("" = stdout) through `path` if non-null.
  static bool wants_json(int argc, char** argv, std::string* path = nullptr);

  void section(const std::string& name);  // subsequent kv() rows go here
  void kv(const std::string& key, double value);
  void kv(const std::string& key, const std::string& value);

  // {"bench":"...","sections":[{"name":"...","values":{...}},...]}
  std::string to_json(const std::string& bench_name) const;
  // Serialize and write to `path` ("" or "-" = stdout). Returns false on
  // I/O failure.
  bool emit(const std::string& bench_name, const std::string& path = "") const;

 private:
  struct Entry {
    std::string key;
    bool is_num = false;
    double num = 0;
    std::string str;
  };
  struct Section {
    std::string name;
    std::vector<Entry> entries;
  };
  std::vector<Section> sections_;
};

}  // namespace bench
