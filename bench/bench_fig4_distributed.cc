// Figure 4: distributed training -- per-epoch breakdown, end-to-end
// convergence, and DDP-style scalability.
//  (a) ResNet-50-class on ImageNet-like, 16 nodes: vanilla / Pufferfish /
//      SIGNUM  (paper: Pufferfish 1.35x / 1.28x per-epoch speedups).
//  (b) ResNet-18-class on CIFAR-like, 8 nodes: + PowerSGD rank 2
//      (paper: 1.33x / 1.67x / 1.92x vs PowerSGD / SIGNUM / vanilla;
//      PowerSGD has the smallest COMM but pays encode/decode).
//  (c) DDP bucketed-overlap scalability over 2/4/8/16 nodes
//      (paper: 1.52x per-epoch at 16 nodes, 1.64x end-to-end at 8).
//
// Compute/encode/decode are measured on the scaled models; communication
// uses the alpha-beta ring model with the REAL payload bytes. A final
// paper-scale projection re-runs the comm model with the full-size models'
// exact byte counts.
#include "common.h"

#include "core/factorize.h"
#include "dist/cluster.h"
#include "runtime/shm_cluster.h"
#include "runtime/thread_pool.h"

using namespace bench;

namespace {

struct ArmResult {
  std::string name;
  dist::EpochBreakdown breakdown;      // last epoch
  std::vector<dist::DistEpochRecord> records;
};

// Runs `epochs` of distributed training; if `hybrid_factory` is set, runs
// Algorithm 1: warm-up epochs on the vanilla model, then switch to the
// warm-started hybrid.
ArmResult run_arm(const std::string& name,
                  const core::VisionModelFactory& vanilla_factory,
                  const core::VisionModelFactory& hybrid_factory,
                  std::unique_ptr<compress::Reducer> reducer,
                  std::unique_ptr<compress::Reducer> post_switch_reducer,
                  const data::SyntheticImages& ds, dist::CostModel cm,
                  dist::DistTrainConfig cfg, int warmup_epochs) {
  Rng rng(13);
  dist::DataParallelTrainer trainer(vanilla_factory(rng), std::move(reducer),
                                    cm, cfg);
  ArmResult out;
  out.name = name;
  for (int e = 0; e < cfg.epochs; ++e) {
    if (hybrid_factory && e == warmup_epochs) {
      std::unique_ptr<nn::UnaryModule> hybrid = hybrid_factory(rng);
      Rng svd_rng(17);
      core::warm_start(trainer.model(), *hybrid, svd_rng);
      trainer.replace_model(std::move(hybrid),
                            std::move(post_switch_reducer));
    }
    out.records.push_back(trainer.train_epoch(ds, e));
  }
  out.breakdown = out.records.back().breakdown;
  return out;
}

void print_breakdown(const std::vector<ArmResult>& arms) {
  metrics::Table t({"method", "comp (s)", "encode (s)", "comm (s)",
                    "decode (s)", "epoch total (s)", "payload/worker"});
  for (const ArmResult& a : arms) {
    const dist::EpochBreakdown& b = a.breakdown;
    t.add_row({a.name, metrics::fmt(b.compute_s, 3),
               metrics::fmt(b.encode_s, 3), metrics::fmt(b.comm_s, 3),
               metrics::fmt(b.decode_s, 3), metrics::fmt(b.total(), 3),
               metrics::fmt_bytes(b.bytes_per_worker)});
  }
  t.print();
}

void print_convergence(const std::vector<ArmResult>& arms) {
  metrics::Table t({"method", "final acc (%)", "simulated wall-clock (s)"});
  for (const ArmResult& a : arms)
    t.add_row({a.name, metrics::fmt(100 * a.records.back().test_acc, 1),
               metrics::fmt(a.records.back().cumulative_sim_seconds, 2)});
  t.print();
}

}  // namespace

int main() {
  banner("Figure 4: distributed breakdown, convergence, DDP scalability",
         "Pufferfish Figure 4 (Section 4.2)",
         "16x p3.2xlarge + NCCL -> N-worker simulator with alpha-beta ring "
         "model @10 Gbps; real grads/payloads, measured compute");

  // ---- (a) ResNet-50-class, 16 nodes. ----
  {
    std::printf("(a) ResNet-50-class on ImageNet-like, 16 nodes, global "
                "batch 64:\n");
    data::SyntheticImages ds = imagenet_like(128, 64);
    dist::CostModel cm;
    cm.nodes = 16;
    dist::DistTrainConfig cfg;
    cfg.epochs = 8;
    cfg.global_batch = 64;
    cfg.lr = 0.05f;
    cfg.lr_milestones = {6};

    std::vector<ArmResult> arms;
    arms.push_back(run_arm("vanilla SGD", make_resnet50(0.125, false),
                           nullptr,
                           std::make_unique<compress::AllreduceReducer>(),
                           nullptr, ds, cm, cfg, 0));
    arms.push_back(run_arm("Pufferfish", make_resnet50(0.125, false),
                           make_resnet50(0.125, true),
                           std::make_unique<compress::AllreduceReducer>(),
                           std::make_unique<compress::AllreduceReducer>(),
                           ds, cm, cfg, 1));
    {
      dist::DistTrainConfig scfg = cfg;
      scfg.lr = 0.005f;  // sign updates need a small step
      scfg.momentum = 0.0f;
      arms.push_back(run_arm("SIGNUM", make_resnet50(0.125, false), nullptr,
                             std::make_unique<compress::SignumReducer>(),
                             nullptr, ds, cm, scfg, 0));
    }
    print_breakdown(arms);
    std::printf("paper: Pufferfish per-epoch 1.35x vs vanilla, 1.28x vs "
                "SIGNUM; ours: %.2fx vs vanilla, %.2fx vs SIGNUM\n",
                arms[0].breakdown.total() / arms[1].breakdown.total(),
                arms[2].breakdown.total() / arms[1].breakdown.total());
    std::printf("\nend-to-end (%d epochs incl. warm-up + SVD):\n",
                cfg.epochs);
    print_convergence(arms);
    std::printf("\n");
  }

  // ---- (b) ResNet-18-class, 8 nodes, large batch + lr warm-up. ----
  {
    std::printf("(b) ResNet-18-class on CIFAR-like, 8 nodes, global batch "
                "64, linear lr warm-up:\n");
    data::SyntheticImages ds = cifar_like(10, 16, 192, 96);
    dist::CostModel cm;
    cm.nodes = 8;
    dist::DistTrainConfig cfg;
    cfg.epochs = 6;
    cfg.global_batch = 64;
    cfg.lr = 0.08f;
    cfg.lr_warmup_epochs = 2;
    cfg.lr_warmup_start = 0.02f;
    cfg.lr_milestones = {4};

    std::vector<ArmResult> arms;
    arms.push_back(run_arm("vanilla SGD", make_resnet18(0.125, 0), nullptr,
                           std::make_unique<compress::AllreduceReducer>(),
                           nullptr, ds, cm, cfg, 0));
    arms.push_back(run_arm("Pufferfish", make_resnet18(0.125, 0),
                           make_resnet18(0.125, 2),
                           std::make_unique<compress::AllreduceReducer>(),
                           std::make_unique<compress::AllreduceReducer>(),
                           ds, cm, cfg, 2));
    // Paper detail: Pufferfish's own warm-up phase can itself run over
    // PowerSGD rank 4 for extra comm savings (Section 4.2).
    arms.push_back(run_arm("Pufferfish (PowerSGD r4 warm-up)",
                           make_resnet18(0.125, 0), make_resnet18(0.125, 2),
                           std::make_unique<compress::PowerSgdReducer>(4, 3),
                           std::make_unique<compress::AllreduceReducer>(),
                           ds, cm, cfg, 2));
    arms.push_back(run_arm("PowerSGD (rank 2)", make_resnet18(0.125, 0),
                           nullptr,
                           std::make_unique<compress::PowerSgdReducer>(2, 3),
                           nullptr, ds, cm, cfg, 0));
    {
      dist::DistTrainConfig scfg = cfg;
      scfg.lr = 0.008f;
      scfg.momentum = 0.0f;
      arms.push_back(run_arm("SIGNUM", make_resnet18(0.125, 0), nullptr,
                             std::make_unique<compress::SignumReducer>(),
                             nullptr, ds, cm, scfg, 0));
    }
    print_breakdown(arms);
    std::printf("paper: Pufferfish per-epoch 1.33x vs PowerSGD, 1.67x vs "
                "SIGNUM, 1.92x vs vanilla; ours: %.2fx / %.2fx / %.2fx\n",
                arms[3].breakdown.total() / arms[1].breakdown.total(),
                arms[4].breakdown.total() / arms[1].breakdown.total(),
                arms[0].breakdown.total() / arms[1].breakdown.total());
    std::printf("\nend-to-end:\n");
    print_convergence(arms);
    std::printf("\n");
  }

  // ---- (c) DDP scalability: paper-scale projection over 2..16 nodes. ----
  {
    std::printf("(c) DDP (bucketed-overlap) per-epoch scalability, "
                "ResNet-50 at PAPER scale (projected):\n");
    // Assumptions (documented in EXPERIMENTS.md): V100 effective training
    // throughput ~10 TFLOP/s; fwd+bwd ~ 3x fwd MACs x 2 FLOP/MAC; per-node
    // batch fixed at 32 (the paper's Fig 4(c) setup); ImageNet epoch =
    // 1,281,167 images; gradients = fp32 params; 25 MB DDP buckets;
    // ring allreduce @10 Gbps.
    Rng rng(19);
    models::ResNet50 rv(models::ResNetImageNetConfig::resnet50_vanilla(),
                        rng);
    models::ResNet50 rp(models::ResNetImageNetConfig::resnet50_pufferfish(),
                        rng);
    const double flops_v = 3.0 * 2.0 * rv.forward_macs(224, 224);
    const double flops_p = 3.0 * 2.0 * rp.forward_macs(224, 224);
    const double v100 = 10e12;
    const int64_t bytes_v = rv.num_params() * 4;
    const int64_t bytes_p = rp.num_params() * 4;
    const int64_t per_node_batch = 32;
    const double images = 1281167.0;

    metrics::Table t({"nodes", "vanilla epoch (s)", "Pufferfish epoch (s)",
                      "speedup", "paper speedup @16: 1.52x"});
    for (int nodes : {2, 4, 8, 16}) {
      dist::CostModel cm;
      cm.nodes = nodes;
      const double steps = images / (per_node_batch * nodes);
      const double step_v = dist::ddp_epoch_seconds(
          flops_v * per_node_batch / v100, bytes_v, cm);
      const double step_p = dist::ddp_epoch_seconds(
          flops_p * per_node_batch / v100, bytes_p, cm);
      t.add_row({std::to_string(nodes), metrics::fmt(steps * step_v, 1),
                 metrics::fmt(steps * step_p, 1),
                 metrics::fmt_ratio(step_v / step_p), ""});
    }
    t.print();
    std::printf(
        "claim: the speedup grows with the cluster because communication "
        "(which Pufferfish cuts 1.68x) becomes a larger share of the step "
        "as nodes increase; the paper measures 1.52x at 16 nodes.\n");
  }

  // ---- (d) measured vs modeled: real shm executor next to the model. ----
  {
    std::printf("\n(d) measured vs modeled, ResNet-18-class, 4 workers "
                "(shared-memory threads vs alpha-beta simulator):\n");
    data::SyntheticImages ds = cifar_like(10, 16, 128, 64);
    dist::DistTrainConfig cfg;
    cfg.epochs = 2;
    cfg.global_batch = 32;
    cfg.lr = 0.05f;

    struct Pair {
      std::string name;
      dist::EpochBreakdown modeled, measured;
    };
    std::vector<Pair> pairs;
    for (int factorized = 0; factorized < 2; ++factorized) {
      Pair p;
      p.name = factorized ? "Pufferfish (hybrid)" : "vanilla";
      auto factory = make_resnet18(0.125, factorized ? 2 : 0);
      {
        // Seed the modeled trainer's model exactly like the shm replicas so
        // both executors walk the same loss trajectory.
        Rng rng(cfg.seed * 0x9E3779B9u + 101);
        dist::CostModel cm;
        cm.nodes = 4;
        dist::DataParallelTrainer modeled(
            factory(rng), std::make_unique<compress::AllreduceReducer>(), cm,
            cfg);
        p.modeled = modeled.train(ds).back().breakdown;
      }
      {
        runtime::ShmClusterConfig scfg;
        scfg.workers = 4;
        scfg.train = cfg;
        runtime::ShmDataParallelTrainer shm(
            factory, std::make_unique<compress::AllreduceReducer>(), scfg);
        p.measured = shm.train(ds).back().breakdown;
      }
      pairs.push_back(std::move(p));
    }
    metrics::Table t({"model", "comp model/meas (s)", "comm model/meas (s)",
                      "total model/meas (s)", "payload/worker"});
    for (const Pair& p : pairs) {
      t.add_row({p.name,
                 metrics::fmt(p.modeled.compute_s, 3) + " / " +
                     metrics::fmt(p.measured.compute_s, 3),
                 metrics::fmt(p.modeled.comm_s, 3) + " / " +
                     metrics::fmt(p.measured.comm_s, 3),
                 metrics::fmt(p.modeled.total(), 3) + " / " +
                     metrics::fmt(p.measured.total(), 3),
                 metrics::fmt_bytes(p.measured.bytes_per_worker)});
    }
    t.print();
    std::printf(
        "claim: both executors run the same gradients on the same shards, so "
        "the factorized/vanilla compute ratio matches (modeled %.2f vs "
        "measured %.2f; absolute seconds differ when workers share cores); "
        "the comm columns contrast a 10 Gbps ring model with in-memory "
        "aggregation -- the factorized model still shrinks the real payload "
        "%.2fx.\n",
        pairs[1].modeled.compute_s / pairs[0].modeled.compute_s,
        pairs[1].measured.compute_s / pairs[0].measured.compute_s,
        static_cast<double>(pairs[0].measured.bytes_per_worker) /
            static_cast<double>(pairs[1].measured.bytes_per_worker));
  }

  // ---- paper-scale comm projection. ----
  {
    std::printf("\npaper-scale projection (exact full-size models, ring "
                "allreduce @10 Gbps, 16 nodes):\n");
    Rng rng(1);
    models::ResNet50 rv(models::ResNetImageNetConfig::resnet50_vanilla(), rng);
    models::ResNet50 rp(models::ResNetImageNetConfig::resnet50_pufferfish(),
                        rng);
    dist::CostModel cm;
    cm.nodes = 16;
    const int64_t bv = rv.num_params() * 4, bp = rp.num_params() * 4;
    metrics::Table t({"model", "gradient size", "allreduce/step (ms)",
                      "unpacked (per-layer calls) (ms)"});
    const int n_layers_v = 161, n_layers_p = 188;  // approx param tensors
    t.add_row({"vanilla ResNet-50", metrics::fmt_bytes(bv),
               metrics::fmt(1e3 * cm.allreduce_seconds(bv, 1), 2),
               metrics::fmt(1e3 * cm.allreduce_seconds(bv, n_layers_v), 2)});
    t.add_row({"Pufferfish ResNet-50", metrics::fmt_bytes(bp),
               metrics::fmt(1e3 * cm.allreduce_seconds(bp, 1), 2),
               metrics::fmt(1e3 * cm.allreduce_seconds(bp, n_layers_p), 2)});
    t.print();
    std::printf(
        "claim: Pufferfish cuts per-step allreduce ~%.2fx at paper scale; "
        "the flat-buffer packing (1 call vs per-layer calls) saves the "
        "latency term the paper's Section 4.1 optimization targets.\n",
        cm.allreduce_seconds(bv, 1) / cm.allreduce_seconds(bp, 1));
  }
  return 0;
}
