#include "common.h"

#include <cstdio>
#include <fstream>

#include "trace/trace.h"

namespace bench {

data::SyntheticImages cifar_like(int64_t classes, int64_t hw, int64_t train,
                                 int64_t test, float noise, uint64_t seed) {
  data::SyntheticImages::Config c;
  c.num_classes = classes;
  c.hw = hw;
  c.train_size = train;
  c.test_size = test;
  c.noise = noise;
  c.seed = seed;
  return data::SyntheticImages(c);
}

data::SyntheticImages imagenet_like(int64_t train, int64_t test) {
  return cifar_like(/*classes=*/20, /*hw=*/32, train, test, /*noise=*/0.35f,
                    /*seed=*/23);
}

core::VisionModelFactory make_vgg(double width, int k_first_lowrank,
                                  int64_t classes) {
  return [=](Rng& rng) -> std::unique_ptr<nn::UnaryModule> {
    models::VggConfig cfg;
    cfg.width_mult = width;
    cfg.k_first_lowrank = k_first_lowrank;
    cfg.num_classes = classes;
    return std::make_unique<models::Vgg19>(cfg, rng);
  };
}

core::VisionModelFactory make_resnet18(double width, int first_lowrank_block,
                                       int64_t classes) {
  return [=](Rng& rng) -> std::unique_ptr<nn::UnaryModule> {
    models::ResNetCifarConfig cfg;
    cfg.width_mult = width;
    cfg.first_lowrank_block = first_lowrank_block;
    cfg.num_classes = classes;
    return std::make_unique<models::ResNet18Cifar>(cfg, rng);
  };
}

core::VisionModelFactory make_resnet50(double width, bool factorize_stage4,
                                       int64_t classes, bool wide) {
  return [=](Rng& rng) -> std::unique_ptr<nn::UnaryModule> {
    models::ResNetImageNetConfig cfg;
    cfg.width_mult = width;
    cfg.factorize_stage4 = factorize_stage4;
    cfg.num_classes = classes;
    cfg.wide = wide;
    cfg.input_hw = 32;
    return std::make_unique<models::ResNet50>(cfg, rng);
  };
}

core::VisionTrainConfig vgg_recipe(int epochs, int warmup, uint64_t seed) {
  core::VisionTrainConfig cfg;
  cfg.epochs = epochs;
  cfg.warmup_epochs = warmup;
  cfg.batch = 32;
  cfg.lr = 0.05f;
  cfg.momentum = 0.9f;
  cfg.weight_decay = 1e-4f;
  // Paper: decay at 150/250 of 300 epochs -> similar fractions here.
  cfg.lr_milestones = {(2 * epochs) / 3, (6 * epochs) / 7};
  cfg.seed = seed;
  return cfg;
}

core::VisionTrainConfig vgg_long_recipe(int warmup, uint64_t seed) {
  core::VisionTrainConfig cfg = vgg_recipe(22, warmup, seed);
  cfg.lr_milestones = {12, 19};
  return cfg;
}

core::VisionTrainConfig resnet_recipe(int epochs, int warmup, uint64_t seed) {
  core::VisionTrainConfig cfg = vgg_recipe(epochs, warmup, seed);
  cfg.lr_milestones = {(3 * epochs) / 4};
  return cfg;
}

core::VisionTrainConfig imagenet_recipe(int epochs, int warmup,
                                        uint64_t seed) {
  core::VisionTrainConfig cfg = vgg_recipe(epochs, warmup, seed);
  // Paper: decay at 30/60/80 of 90 epochs; label smoothing 0.1.
  cfg.lr_milestones = {epochs / 3, (2 * epochs) / 3, (8 * epochs) / 9};
  cfg.label_smoothing = 0.1f;
  return cfg;
}

void banner(const std::string& title, const std::string& paper_ref,
            const std::string& substitution) {
  std::printf("=====================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  if (!substitution.empty())
    std::printf("substitution: %s\n", substitution.c_str());
  std::printf("=====================================================\n\n");
}

void alloc_section_begin() {
  metrics::reset_alloc_stats(/*clear_pool=*/true);
}

void alloc_section_end(const std::string& label) {
  std::printf("[alloc] %s: %s\n", label.c_str(),
              metrics::fmt_alloc_stats(metrics::alloc_stats()).c_str());
}

void trace_section_begin() {
  if (trace::enabled()) trace::reset();
}

void trace_section_end(const std::string& label,
                       const std::string& json_path) {
  if (!trace::enabled()) return;
  // Drain first: wraparound drops are tallied when the rings are read.
  const std::vector<trace::Event> events = trace::drain();
  const std::uint64_t dropped = trace::dropped();
  std::string exported;
  if (!json_path.empty()) {
    std::ofstream os(json_path, std::ios::binary);
    os << trace::to_chrome_json(events);
    exported = os.good() ? ", exported " + json_path
                         : ", EXPORT FAILED " + json_path;
  }
  std::printf("[trace] %s: %zu spans, %llu dropped%s\n", label.c_str(),
              events.size(), static_cast<unsigned long long>(dropped),
              exported.c_str());
}

std::string cell(const std::vector<double>& values, int precision) {
  return metrics::fmt_mean_std(metrics::mean_std(values), precision);
}

bool JsonReport::wants_json(int argc, char** argv, std::string* path) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json") {
      if (path != nullptr) path->clear();
      return true;
    }
    if (a.rfind("--json=", 0) == 0) {
      if (path != nullptr) *path = a.substr(7);
      return true;
    }
  }
  return false;
}

void JsonReport::section(const std::string& name) {
  sections_.push_back({name, {}});
}

void JsonReport::kv(const std::string& key, double value) {
  if (sections_.empty()) section("default");
  Entry e;
  e.key = key;
  e.is_num = true;
  e.num = value;
  sections_.back().entries.push_back(std::move(e));
}

void JsonReport::kv(const std::string& key, const std::string& value) {
  if (sections_.empty()) section("default");
  Entry e;
  e.key = key;
  e.str = value;
  sections_.back().entries.push_back(std::move(e));
}

std::string JsonReport::to_json(const std::string& bench_name) const {
  std::string out = "{\"bench\":\"";
  trace::json_escape(out, bench_name.c_str());
  out += "\",\"sections\":[";
  char buf[64];
  for (size_t s = 0; s < sections_.size(); ++s) {
    if (s != 0) out += ',';
    out += "{\"name\":\"";
    trace::json_escape(out, sections_[s].name.c_str());
    out += "\",\"values\":{";
    const auto& entries = sections_[s].entries;
    for (size_t i = 0; i < entries.size(); ++i) {
      if (i != 0) out += ',';
      out += '"';
      trace::json_escape(out, entries[i].key.c_str());
      out += "\":";
      if (entries[i].is_num) {
        // %.12g round-trips the doubles benches report while staying
        // byte-stable for equal inputs.
        std::snprintf(buf, sizeof(buf), "%.12g", entries[i].num);
        out += buf;
      } else {
        out += '"';
        trace::json_escape(out, entries[i].str.c_str());
        out += '"';
      }
    }
    out += "}}";
  }
  out += "]}\n";
  return out;
}

bool JsonReport::emit(const std::string& bench_name,
                      const std::string& path) const {
  const std::string json = to_json(bench_name);
  if (path.empty() || path == "-") {
    std::fputs(json.c_str(), stdout);
    return true;
  }
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(json.data(), static_cast<std::streamsize>(json.size()));
  return os.good();
}

}  // namespace bench
