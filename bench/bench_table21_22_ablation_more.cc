// Appendix L, Tables 21/22: the mitigation ablation on the remaining two
// vision settings -- ResNet-50 on ImageNet (Table 21) and VGG-19-BN on
// CIFAR-10 (Table 22).
// Arms: fully low-rank from scratch / hybrid without warm-up / hybrid with
// warm-up. Paper orderings: 71.03 < 75.85 < 76.43 (R50 top-1) and
// 93.34 < 93.53 < 93.89 (VGG).
#include "common.h"

using namespace bench;

namespace {

struct ArmSpec {
  std::string name;
  // Hybrid factory per arm; null = use vanilla reference instead.
  core::VisionModelFactory hybrid;
  int warmup;
};

void run_table(const std::string& title,
               const core::VisionModelFactory& vanilla,
               const std::vector<ArmSpec>& arms,
               const data::SyntheticImages& ds,
               const core::VisionTrainConfig& base_cfg,
               const std::vector<std::string>& paper_acc, int seeds) {
  std::printf("%s\n", title.c_str());
  metrics::Table t({"method", "top-1 (%)", "top-5 (%)", "paper top-1"});
  for (size_t a = 0; a < arms.size(); ++a) {
    std::vector<double> top1, top5;
    for (int s = 0; s < seeds; ++s) {
      core::VisionTrainConfig cfg = base_cfg;
      cfg.warmup_epochs = arms[a].warmup;
      cfg.seed = static_cast<uint64_t>(s);
      core::VisionResult r =
          core::train_vision(vanilla, arms[a].hybrid, ds, cfg);
      top1.push_back(100 * r.final_acc);
      top5.push_back(100 * r.final_top5);
    }
    t.add_row({arms[a].name, cell(top1), cell(top5), paper_acc[a]});
  }
  t.print();
  std::printf("\n");
}

}  // namespace

int main() {
  banner("Tables 21/22 (appendix L): mitigation ablations, ResNet-50 & VGG",
         "Pufferfish Tables 21 and 22",
         "ImageNet/CIFAR-10 -> synthetic tasks, width-scaled models");

  {
    // Table 21: ResNet-50 on the ImageNet-like task (1 seed: the paper's
    // Table 21 is also single-run).
    data::SyntheticImages ds = imagenet_like(160, 80);
    auto lowrank_all = [](Rng& rng) -> std::unique_ptr<nn::UnaryModule> {
      // "Low-rank ResNet-50": every bottleneck stage factorized.
      models::ResNetImageNetConfig c;
      c.width_mult = 0.125;
      c.num_classes = 20;
      c.factorize_all = true;
      c.rank_ratio = 0.25;
      c.input_hw = 32;
      return std::make_unique<models::ResNet50>(c, rng);
    };
    std::vector<ArmSpec> arms = {
        {"Low-rank ResNet-50 (scratch)", lowrank_all, 0},
        {"Hybrid ResNet-50 (wo. warm-up)", make_resnet50(0.125, true, 20), 0},
        {"Hybrid ResNet-50 (w. warm-up)", make_resnet50(0.125, true, 20), 2},
    };
    // 12-epoch budget; the warm-up arm switches at epoch 5 (after the
    // scaled ResNet-50's take-off) -- switching earlier factorizes
    // near-random weights, the same effect Figure 3(b) charts.
    arms[2].warmup = 5;
    run_table("Table 21: ResNet-50 / ImageNet-like",
              make_resnet50(0.125, false, 20), arms, ds,
              imagenet_recipe(12, 0),
              {"71.03", "75.85", "76.43"}, /*seeds=*/1);
  }

  {
    // Table 22: VGG-19 on the CIFAR-like task (paper: 3 seeds; we run 2 to
    // stay inside the CPU budget).
    data::SyntheticImages ds = cifar_like();
    std::vector<ArmSpec> arms = {
        {"Low-rank VGG-19 (scratch)", make_vgg(0.125, 2), 0},
        {"Hybrid VGG-19 (wo. warm-up)", make_vgg(0.125, 10), 0},
        {"Hybrid VGG-19 (w. warm-up)", make_vgg(0.125, 10), 13},
    };
    run_table("Table 22: VGG-19-BN / CIFAR-like", make_vgg(0.125, 0), arms,
              ds, vgg_long_recipe(),
              {"93.34 +- 0.08", "93.53 +- 0.13", "93.89 +- 0.14"},
              /*seeds=*/2);
  }

  std::printf(
      "Claim check: both tables should reproduce the paper's ordering "
      "scratch <= hybrid <= hybrid+warm-up.\n");
  return 0;
}
