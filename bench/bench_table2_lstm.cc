// Table 2: vanilla vs Pufferfish 2-layer LSTM on WikiText-2.
//
// Part A reproduces the paper's exact parameter/MAC accounting by
// instantiating the full-size models (vocab 33278, hidden 1500, rank 375).
// Part B reproduces the *behavioral* claim -- the factorized LSTM trained
// with vanilla warm-up matches (or slightly trails) the vanilla model's
// perplexity at roughly half the LSTM parameters -- on the synthetic Markov
// corpus, averaged over 3 seeds like the paper.
#include "common.h"

#include <cmath>

using namespace bench;

int main() {
  banner("Table 2: LSTM on WikiText-2",
         "Pufferfish Table 2 (Section 4.2)",
         "WikiText-2 -> synthetic Markov corpus; paper-size counts exact");

  {
    Rng rng(1);
    models::LstmLm vanilla(models::LstmLmConfig::paper_vanilla(), rng);
    models::LstmLm pf(models::LstmLmConfig::paper_pufferfish(), rng);
    metrics::Table t({"metric", "vanilla LSTM (paper)", "vanilla (ours)",
                      "Pufferfish LSTM (paper)", "Pufferfish (ours)"});
    t.add_row({"# params", "85,962,278",
               metrics::fmt_int(vanilla.num_params()), "67,962,278",
               metrics::fmt_int(pf.num_params())});
    t.add_row({"MACs / token / layer", "18M",
               metrics::fmt_int(vanilla.macs_per_token_per_layer()), "9M",
               metrics::fmt_int(pf.macs_per_token_per_layer())});
    t.print();
  }

  std::printf("\nTraining at synthetic scale (3 seeds, mean +- std):\n\n");
  data::SyntheticCorpus::Config cc;
  cc.vocab = 100;
  cc.train_tokens = 8000;
  cc.valid_tokens = 1600;
  cc.test_tokens = 1600;
  data::SyntheticCorpus corpus(cc);

  auto factory = [](int64_t rank) {
    return [rank](Rng& rng) {
      models::LstmLmConfig cfg = models::LstmLmConfig::tiny(rank);
      cfg.vocab = 100;
      cfg.hidden = 48;
      return std::make_unique<models::LstmLm>(cfg, rng);
    };
  };

  std::vector<double> v_train, v_val, v_test, p_train, p_val, p_test;
  int64_t v_params = 0, p_params = 0;
  for (uint64_t seed = 0; seed < 3; ++seed) {
    core::LmTrainConfig cfg;
    cfg.epochs = 10;
    cfg.warmup_epochs = 5;
    cfg.batch = 8;
    cfg.bptt = 12;
    cfg.lr = 2.0f;
    cfg.seed = seed;
    core::LmResult rv = core::train_lm(factory(0), nullptr, corpus, cfg);
    core::LmResult rp = core::train_lm(factory(0), factory(12), corpus, cfg);
    v_train.push_back(rv.train_ppl);
    v_val.push_back(rv.val_ppl);
    v_test.push_back(rv.test_ppl);
    p_train.push_back(rp.train_ppl);
    p_val.push_back(rp.val_ppl);
    p_test.push_back(rp.test_ppl);
    v_params = rv.params;
    p_params = rp.params;
  }

  metrics::Table t({"metric", "vanilla LSTM", "Pufferfish LSTM"});
  t.add_row({"# params", metrics::fmt_int(v_params),
             metrics::fmt_int(p_params)});
  t.add_row({"train ppl", cell(v_train), cell(p_train)});
  t.add_row({"val ppl", cell(v_val), cell(p_val)});
  t.add_row({"test ppl", cell(v_test), cell(p_test)});
  t.print();

  const double ratio = static_cast<double>(v_params) / p_params;
  std::printf(
      "\nClaim check (paper: test ppl 88.16 vanilla vs 88.72 Pufferfish -- "
      "nearly equal; LSTM params halved): our factorized model is %.2fx "
      "smaller and its test ppl is within %.1f%% of vanilla.\n",
      ratio,
      100.0 * std::fabs(metrics::mean_std(p_test).mean -
                        metrics::mean_std(v_test).mean) /
          metrics::mean_std(v_test).mean);
  return 0;
}
