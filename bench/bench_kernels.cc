// Kernel microbenchmarks (google-benchmark): the primitive operations the
// paper's runtime results bottom out in -- GEMM at the paper's layer shapes,
// im2col convolution (dense vs factorized), truncated SVD (Gram-Jacobi vs
// tred2/tqli vs randomized), and compressor encode/decode throughput.
//
// The custom main first prints a kernel-backend comparison table (scalar vs
// avx2 GEMM throughput at representative shapes, plus the fused low-rank
// forward vs its two-GEMM composition), then hands the remaining argv to
// google-benchmark. `--json[=path]` emits the table as a JsonReport and
// skips the google-benchmark suite -- the machine-readable mode CI and
// EXPERIMENTS.md snapshots use.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "autograd/ops.h"
#include "common.h"
#include "compress/compressor.h"
#include "kernels/kernels.h"
#include "linalg/svd.h"
#include "metrics/metrics.h"
#include "nn/layers.h"
#include "optim/optim.h"
#include "runtime/buffer_pool.h"
#include "runtime/thread_pool.h"
#include "tensor/matmul.h"

using namespace pf;

namespace {

void BM_Matmul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = rng.randn(Shape{n, n});
  Tensor b = rng.randn(Shape{n, n});
  for (auto _ : state) {
    Tensor c = matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

void BM_MatmulNt(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(2);
  Tensor a = rng.randn(Shape{n, n});
  Tensor b = rng.randn(Shape{n, n});
  for (auto _ : state) {
    Tensor c = matmul_nt(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatmulNt)->Arg(128)->Arg(256);

// Thread-scaling sweep over the parallel runtime (src/runtime): vanilla
// n x n GEMM vs the factorized pair (n x r) @ (r x n) at the paper's
// rank-ratio 0.25, at 1/2/4/8 pool threads. Rows land in the standard
// google-benchmark output (use --benchmark_format=json for machine-readable
// rows alongside the other kernel benches).
void BM_MatmulVanillaThreads(benchmark::State& state) {
  const int64_t n = state.range(0);
  runtime::set_threads(static_cast<int>(state.range(1)));
  Rng rng(10);
  Tensor a = rng.randn(Shape{n, n});
  Tensor b = rng.randn(Shape{n, n});
  for (auto _ : state) {
    Tensor c = matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  runtime::set_threads(0);  // back to the PF_THREADS env default
}
BENCHMARK(BM_MatmulVanillaThreads)
    ->ArgNames({"n", "threads"})
    ->Args({256, 1})->Args({256, 2})->Args({256, 4})->Args({256, 8})
    ->Args({512, 1})->Args({512, 2})->Args({512, 4})->Args({512, 8});

void BM_MatmulFactorizedThreads(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t r = n / 4;  // rank-ratio 0.25
  runtime::set_threads(static_cast<int>(state.range(1)));
  Rng rng(11);
  Tensor a = rng.randn(Shape{n, n});
  Tensor u = rng.randn(Shape{n, r});
  Tensor v = rng.randn(Shape{r, n});
  for (auto _ : state) {
    Tensor c = matmul(matmul(a, u), v);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * r);
  runtime::set_threads(0);
}
BENCHMARK(BM_MatmulFactorizedThreads)
    ->ArgNames({"n", "threads"})
    ->Args({256, 1})->Args({256, 2})->Args({256, 4})->Args({256, 8})
    ->Args({512, 1})->Args({512, 2})->Args({512, 4})->Args({512, 8});

// Dense vs factorized conv at the paper's 512->512 3x3 shape (scaled 1/8).
void BM_ConvDense(benchmark::State& state) {
  Rng rng(3);
  nn::Conv2d conv(64, 64, 3, 1, 1, rng);
  Tensor x = rng.randn(Shape{4, 64, 8, 8});
  ag::NoGradGuard ng;
  for (auto _ : state) {
    ag::Var y = conv.forward(ag::leaf(x));
    benchmark::DoNotOptimize(y->value.data());
  }
}
BENCHMARK(BM_ConvDense);

void BM_ConvFactorized(benchmark::State& state) {
  Rng rng(4);
  nn::LowRankConv2d conv(64, 64, 3, 1, 1, 16, rng);
  Tensor x = rng.randn(Shape{4, 64, 8, 8});
  ag::NoGradGuard ng;
  for (auto _ : state) {
    ag::Var y = conv.forward(ag::leaf(x));
    benchmark::DoNotOptimize(y->value.data());
  }
}
BENCHMARK(BM_ConvFactorized);

// SVD engines on a conv-shaped unrolled matrix (576 x 512, rank 128).
void BM_SvdGram(benchmark::State& state) {
  Rng rng(5);
  Tensor a = rng.randn(Shape{576, 512});
  for (auto _ : state) {
    auto r = linalg::gram_svd(a, 128);
    benchmark::DoNotOptimize(r.s.data());
  }
}
BENCHMARK(BM_SvdGram);

void BM_SvdRandomized(benchmark::State& state) {
  Rng rng(6);
  Tensor a = rng.randn(Shape{576, 512});
  Rng seed(7);
  for (auto _ : state) {
    auto r = linalg::randomized_svd(a, 128, seed);
    benchmark::DoNotOptimize(r.s.data());
  }
}
BENCHMARK(BM_SvdRandomized);

void BM_EighJacobiVsTridiag(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(8);
  Tensor m = rng.randn(Shape{n, n});
  Tensor a = matmul_tn(m, m);
  const bool tridiag = state.range(1) == 1;
  for (auto _ : state) {
    auto r = tridiag ? linalg::tridiag_eigh(a) : linalg::jacobi_eigh(a);
    benchmark::DoNotOptimize(r.values.data());
  }
}
BENCHMARK(BM_EighJacobiVsTridiag)
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({256, 0})
    ->Args({256, 1});

// ---- Allocation churn: full train steps with the pool off vs on. ----
//
// The tensor core allocates every tape temporary from runtime::BufferPool;
// with pooling on, a steady-state train loop should recycle nearly all of
// them (sys_allocs_per_step ~ 0 after warm-up). Arg(0) = pool disabled
// (every acquire hits the system allocator), Arg(1) = pool enabled. The
// counters make the before/after visible in the bench output itself;
// EXPERIMENTS.md records the numbers.
void churn_train_steps(benchmark::State& state, nn::UnaryModule& model,
                       nn::Module& root, const Tensor& x,
                       const std::vector<int64_t>& labels) {
  runtime::BufferPool& pool = runtime::BufferPool::instance();
  const bool was_enabled = pool.enabled();
  pool.set_enabled(state.range(0) == 1);
  pool.clear();

  optim::SGD sgd(root.parameters(), /*lr=*/0.01f, /*momentum=*/0.9f);
  auto step = [&] {
    root.zero_grad();
    ag::Var loss = ag::cross_entropy(model.forward(ag::leaf(x)), labels);
    ag::backward(loss);
    sgd.step();
  };
  step();  // warm-up: populate pool buckets and optimizer state
  pool.reset_stats();

  int64_t steps = 0;
  for (auto _ : state) {
    step();
    ++steps;
  }
  const auto s = metrics::alloc_stats();
  state.counters["allocs_per_step"] =
      benchmark::Counter(static_cast<double>(s.allocations) /
                         static_cast<double>(steps > 0 ? steps : 1));
  state.counters["sys_allocs_per_step"] =
      benchmark::Counter(static_cast<double>(s.sys_allocs) /
                         static_cast<double>(steps > 0 ? steps : 1));
  state.counters["cow_per_step"] =
      benchmark::Counter(static_cast<double>(s.cow_unshares) /
                         static_cast<double>(steps > 0 ? steps : 1));
  pool.set_enabled(was_enabled);
  pool.clear();
}

// Small ResNet-style block: conv(16->16, 3x3) + BN + relu + skip, then
// global-avgpool + linear head so the step has a real loss and optimizer.
void BM_TrainStepChurnResNetBlock(benchmark::State& state) {
  Rng rng(12);
  nn::Conv2d conv(16, 16, 3, 1, 1, rng);
  nn::BatchNorm2d bn(16);
  nn::Linear head(16, 10, rng);
  struct Block : nn::UnaryModule {
    nn::Conv2d* conv = nullptr;
    nn::BatchNorm2d* bn = nullptr;
    nn::Linear* head = nullptr;
    void init(nn::Conv2d* c, nn::BatchNorm2d* b, nn::Linear* h) {
      conv = c;
      bn = b;
      head = h;
      register_child(c);
      register_child(b);
      register_child(h);
    }
    std::string type_name() const override { return "ChurnBlock"; }
    ag::Var forward(const ag::Var& x) override {
      ag::Var y = ag::relu(ag::add(bn->forward(conv->forward(x)), x));
      return head->forward(ag::global_avgpool(y));
    }
  };
  Block block;
  block.init(&conv, &bn, &head);

  Tensor x = rng.randn(Shape{8, 16, 8, 8});
  std::vector<int64_t> labels(8);
  for (size_t i = 0; i < labels.size(); ++i)
    labels[i] = static_cast<int64_t>(i) % 10;
  churn_train_steps(state, block, block, x, labels);
}
BENCHMARK(BM_TrainStepChurnResNetBlock)
    ->ArgNames({"pool"})
    ->Arg(0)
    ->Arg(1);

// Compressor encode+decode throughput on a 1M-element gradient.
template <typename MakeReducer>
void reducer_bench(benchmark::State& state, MakeReducer make) {
  Rng rng(9);
  const int64_t n = 1 << 20;
  std::vector<Tensor> grads = {rng.randn(Shape{n}), rng.randn(Shape{n})};
  std::vector<Shape> shapes = {Shape{1024, 1024}};
  auto reducer = make();
  compress::ReduceStats stats;
  for (auto _ : state) {
    Tensor agg = reducer->reduce(grads, shapes, &stats);
    benchmark::DoNotOptimize(agg.data());
  }
  state.SetBytesProcessed(state.iterations() * n * 4);
}

void BM_ReduceAllreduce(benchmark::State& state) {
  reducer_bench(state,
                [] { return std::make_unique<compress::AllreduceReducer>(); });
}
BENCHMARK(BM_ReduceAllreduce);

void BM_ReducePowerSgd(benchmark::State& state) {
  reducer_bench(state, [] {
    return std::make_unique<compress::PowerSgdReducer>(4, 1);
  });
}
BENCHMARK(BM_ReducePowerSgd);

void BM_ReduceSignum(benchmark::State& state) {
  reducer_bench(state,
                [] { return std::make_unique<compress::SignumReducer>(); });
}
BENCHMARK(BM_ReduceSignum);

void BM_ReduceBinaryQuant(benchmark::State& state) {
  reducer_bench(state, [] {
    return std::make_unique<compress::BinaryQuantReducer>(3);
  });
}
BENCHMARK(BM_ReduceBinaryQuant);

void BM_ReduceTopK(benchmark::State& state) {
  reducer_bench(state,
                [] { return std::make_unique<compress::TopKReducer>(0.01); });
}
BENCHMARK(BM_ReduceTopK);

// ---- Backend comparison table (custom main) ----
//
// Single-thread, best-of-reps GEMM throughput per backend at the shapes the
// training loop actually hits: the square planner-calibration GEMM and the
// ResNet-18 im2col shapes (c_out x c_in*3*3 x spatial) at CIFAR geometry.
struct GemmCase {
  const char* label;
  int64_t m, k, n;
};
constexpr GemmCase kGemmCases[] = {
    {"512x512x512 (square)", 512, 512, 512},
    {"64x576x1024 (rn18 conv2)", 64, 576, 1024},
    {"128x1152x256 (rn18 conv3)", 128, 1152, 256},
    {"256x2304x64 (rn18 conv4)", 256, 2304, 64},
};

double best_seconds(int reps, const std::function<void()>& fn) {
  fn();  // warm-up: faults in dispatch, pool buffers, packing scratch
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    metrics::Timer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

void backend_table(bench::JsonReport& report) {
  runtime::set_threads(1);
  const bool has_avx2 = kernels::avx2_supported();
  const std::string prev = kernels::backend_name();
  const int reps = 5;

  std::printf("kernel backends: scalar%s (active: %s)\n",
              has_avx2 ? ", avx2" : " (avx2 unavailable on this host)",
              kernels::backend_name());
  std::printf("GEMM throughput, 1 thread, best of %d:\n", reps);
  std::printf("  %-28s %12s %12s %9s\n", "shape (m x k x n)", "scalar GF/s",
              "avx2 GF/s", "speedup");
  for (const GemmCase& c : kGemmCases) {
    Rng rng(17);
    const Tensor a = rng.randn(Shape{c.m, c.k});
    const Tensor b = rng.randn(Shape{c.k, c.n});
    const double flops = 2.0 * static_cast<double>(c.m) * c.k * c.n;
    auto gflops = [&](const char* backend) {
      if (!kernels::set_backend(backend)) return 0.0;
      const double secs = best_seconds(reps, [&] {
        Tensor out = matmul(a, b);
        benchmark::DoNotOptimize(out.data());
      });
      return flops / secs / 1e9;
    };
    const double gf_scalar = gflops("scalar");
    const double gf_avx2 = gflops("avx2");
    std::printf("  %-28s %12.1f %12.1f %8.1fx\n", c.label, gf_scalar, gf_avx2,
                gf_avx2 > 0 ? gf_avx2 / gf_scalar : 0.0);
    report.section(std::string("gemm ") + c.label);
    report.kv("m", static_cast<double>(c.m));
    report.kv("k", static_cast<double>(c.k));
    report.kv("n", static_cast<double>(c.n));
    report.kv("scalar_gflops", gf_scalar);
    report.kv("avx2_gflops", gf_avx2);
    report.kv("speedup", gf_avx2 > 0 ? gf_avx2 / gf_scalar : 0.0);
  }

  // Fused low-rank forward U(V^T x) vs its two-GEMM composition, same
  // backend on both sides: the fusion's win is skipping the materialized
  // full-width intermediate, not vectorization.
  const int64_t m = 512, in = 512, r = 128, out = 512;
  Rng rng(18);
  const Tensor x = rng.randn(Shape{m, in});
  const Tensor v = rng.randn(Shape{in, r});
  const Tensor u = rng.randn(Shape{out, r});
  std::printf("fused low-rank forward U(V^T x), m=%lld in=%lld r=%lld "
              "out=%lld, 1 thread:\n",
              static_cast<long long>(m), static_cast<long long>(in),
              static_cast<long long>(r), static_cast<long long>(out));
  std::printf("  %-8s %12s %12s %9s\n", "backend", "two-op ms", "fused ms",
              "speedup");
  for (const char* backend : {"scalar", "avx2"}) {
    if (!kernels::set_backend(backend)) continue;
    const double two = best_seconds(reps, [&] {
      Tensor y = matmul_nt(matmul(x, v), u);
      benchmark::DoNotOptimize(y.data());
    });
    const double fused = best_seconds(reps, [&] {
      Tensor y = kernels::lowrank_matmul(x, v, u);
      benchmark::DoNotOptimize(y.data());
    });
    std::printf("  %-8s %12.3f %12.3f %8.2fx\n", backend, two * 1e3,
                fused * 1e3, two / fused);
    report.section(std::string("lowrank_fused ") + backend);
    report.kv("two_op_ms", two * 1e3);
    report.kv("fused_ms", fused * 1e3);
    report.kv("speedup", two / fused);
  }
  kernels::set_backend(prev.c_str());
  runtime::set_threads(0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  const bool json = bench::JsonReport::wants_json(argc, argv, &json_path);
  // Strip --json[=path] before handing argv to google-benchmark, which
  // rejects flags it does not know.
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i)
    if (std::strncmp(argv[i], "--json", 6) != 0) args.push_back(argv[i]);
  int bargc = static_cast<int>(args.size());

  bench::JsonReport report;
  backend_table(report);
  if (json) return report.emit("bench_kernels", json_path) ? 0 : 1;

  benchmark::Initialize(&bargc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bargc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
