// Kernel microbenchmarks (google-benchmark): the primitive operations the
// paper's runtime results bottom out in -- GEMM at the paper's layer shapes,
// im2col convolution (dense vs factorized), truncated SVD (Gram-Jacobi vs
// tred2/tqli vs randomized), and compressor encode/decode throughput.
#include <benchmark/benchmark.h>

#include "compress/compressor.h"
#include "linalg/svd.h"
#include "nn/layers.h"
#include "runtime/thread_pool.h"
#include "tensor/matmul.h"

using namespace pf;

namespace {

void BM_Matmul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = rng.randn(Shape{n, n});
  Tensor b = rng.randn(Shape{n, n});
  for (auto _ : state) {
    Tensor c = matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

void BM_MatmulNt(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(2);
  Tensor a = rng.randn(Shape{n, n});
  Tensor b = rng.randn(Shape{n, n});
  for (auto _ : state) {
    Tensor c = matmul_nt(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatmulNt)->Arg(128)->Arg(256);

// Thread-scaling sweep over the parallel runtime (src/runtime): vanilla
// n x n GEMM vs the factorized pair (n x r) @ (r x n) at the paper's
// rank-ratio 0.25, at 1/2/4/8 pool threads. Rows land in the standard
// google-benchmark output (use --benchmark_format=json for machine-readable
// rows alongside the other kernel benches).
void BM_MatmulVanillaThreads(benchmark::State& state) {
  const int64_t n = state.range(0);
  runtime::set_threads(static_cast<int>(state.range(1)));
  Rng rng(10);
  Tensor a = rng.randn(Shape{n, n});
  Tensor b = rng.randn(Shape{n, n});
  for (auto _ : state) {
    Tensor c = matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  runtime::set_threads(0);  // back to the PF_THREADS env default
}
BENCHMARK(BM_MatmulVanillaThreads)
    ->ArgNames({"n", "threads"})
    ->Args({256, 1})->Args({256, 2})->Args({256, 4})->Args({256, 8})
    ->Args({512, 1})->Args({512, 2})->Args({512, 4})->Args({512, 8});

void BM_MatmulFactorizedThreads(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t r = n / 4;  // rank-ratio 0.25
  runtime::set_threads(static_cast<int>(state.range(1)));
  Rng rng(11);
  Tensor a = rng.randn(Shape{n, n});
  Tensor u = rng.randn(Shape{n, r});
  Tensor v = rng.randn(Shape{r, n});
  for (auto _ : state) {
    Tensor c = matmul(matmul(a, u), v);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * r);
  runtime::set_threads(0);
}
BENCHMARK(BM_MatmulFactorizedThreads)
    ->ArgNames({"n", "threads"})
    ->Args({256, 1})->Args({256, 2})->Args({256, 4})->Args({256, 8})
    ->Args({512, 1})->Args({512, 2})->Args({512, 4})->Args({512, 8});

// Dense vs factorized conv at the paper's 512->512 3x3 shape (scaled 1/8).
void BM_ConvDense(benchmark::State& state) {
  Rng rng(3);
  nn::Conv2d conv(64, 64, 3, 1, 1, rng);
  Tensor x = rng.randn(Shape{4, 64, 8, 8});
  ag::NoGradGuard ng;
  for (auto _ : state) {
    ag::Var y = conv.forward(ag::leaf(x));
    benchmark::DoNotOptimize(y->value.data());
  }
}
BENCHMARK(BM_ConvDense);

void BM_ConvFactorized(benchmark::State& state) {
  Rng rng(4);
  nn::LowRankConv2d conv(64, 64, 3, 1, 1, 16, rng);
  Tensor x = rng.randn(Shape{4, 64, 8, 8});
  ag::NoGradGuard ng;
  for (auto _ : state) {
    ag::Var y = conv.forward(ag::leaf(x));
    benchmark::DoNotOptimize(y->value.data());
  }
}
BENCHMARK(BM_ConvFactorized);

// SVD engines on a conv-shaped unrolled matrix (576 x 512, rank 128).
void BM_SvdGram(benchmark::State& state) {
  Rng rng(5);
  Tensor a = rng.randn(Shape{576, 512});
  for (auto _ : state) {
    auto r = linalg::gram_svd(a, 128);
    benchmark::DoNotOptimize(r.s.data());
  }
}
BENCHMARK(BM_SvdGram);

void BM_SvdRandomized(benchmark::State& state) {
  Rng rng(6);
  Tensor a = rng.randn(Shape{576, 512});
  Rng seed(7);
  for (auto _ : state) {
    auto r = linalg::randomized_svd(a, 128, seed);
    benchmark::DoNotOptimize(r.s.data());
  }
}
BENCHMARK(BM_SvdRandomized);

void BM_EighJacobiVsTridiag(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(8);
  Tensor m = rng.randn(Shape{n, n});
  Tensor a = matmul_tn(m, m);
  const bool tridiag = state.range(1) == 1;
  for (auto _ : state) {
    auto r = tridiag ? linalg::tridiag_eigh(a) : linalg::jacobi_eigh(a);
    benchmark::DoNotOptimize(r.values.data());
  }
}
BENCHMARK(BM_EighJacobiVsTridiag)
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({256, 0})
    ->Args({256, 1});

// Compressor encode+decode throughput on a 1M-element gradient.
template <typename MakeReducer>
void reducer_bench(benchmark::State& state, MakeReducer make) {
  Rng rng(9);
  const int64_t n = 1 << 20;
  std::vector<Tensor> grads = {rng.randn(Shape{n}), rng.randn(Shape{n})};
  std::vector<Shape> shapes = {Shape{1024, 1024}};
  auto reducer = make();
  compress::ReduceStats stats;
  for (auto _ : state) {
    Tensor agg = reducer->reduce(grads, shapes, &stats);
    benchmark::DoNotOptimize(agg.data());
  }
  state.SetBytesProcessed(state.iterations() * n * 4);
}

void BM_ReduceAllreduce(benchmark::State& state) {
  reducer_bench(state,
                [] { return std::make_unique<compress::AllreduceReducer>(); });
}
BENCHMARK(BM_ReduceAllreduce);

void BM_ReducePowerSgd(benchmark::State& state) {
  reducer_bench(state, [] {
    return std::make_unique<compress::PowerSgdReducer>(4, 1);
  });
}
BENCHMARK(BM_ReducePowerSgd);

void BM_ReduceSignum(benchmark::State& state) {
  reducer_bench(state,
                [] { return std::make_unique<compress::SignumReducer>(); });
}
BENCHMARK(BM_ReduceSignum);

void BM_ReduceBinaryQuant(benchmark::State& state) {
  reducer_bench(state, [] {
    return std::make_unique<compress::BinaryQuantReducer>(3);
  });
}
BENCHMARK(BM_ReduceBinaryQuant);

void BM_ReduceTopK(benchmark::State& state) {
  reducer_bench(state,
                [] { return std::make_unique<compress::TopKReducer>(0.01); });
}
BENCHMARK(BM_ReduceTopK);

}  // namespace

BENCHMARK_MAIN();
