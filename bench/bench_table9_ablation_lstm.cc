// Table 9: the vanilla warm-up ablation on the low-rank LSTM / WikiText-2.
// Two arms x 3 seeds: low-rank LSTM trained from scratch vs the same model
// warm-started from a partially trained vanilla LSTM.
// Paper: warm-up improves every perplexity (train 68.04 -> 62.2,
// val 97.59 -> 93.62, test 92.04 -> 88.72).
#include "common.h"

using namespace bench;

int main() {
  banner("Table 9: warm-up ablation, LSTM on WikiText-2",
         "Pufferfish Table 9 (Section 4.2)",
         "WikiText-2 -> synthetic Markov corpus, scaled LSTM, 3 seeds");

  data::SyntheticCorpus::Config cc;
  cc.vocab = 100;
  cc.train_tokens = 8000;
  cc.valid_tokens = 1600;
  cc.test_tokens = 1600;
  data::SyntheticCorpus corpus(cc);

  auto factory = [](int64_t rank) {
    return [rank](Rng& rng) {
      models::LstmLmConfig cfg = models::LstmLmConfig::tiny(rank);
      cfg.vocab = 100;
      cfg.hidden = 48;
      return std::make_unique<models::LstmLm>(cfg, rng);
    };
  };

  const int kSeeds = 3;
  std::vector<double> s_train, s_val, s_test, w_train, w_val, w_test;
  for (int s = 0; s < kSeeds; ++s) {
    core::LmTrainConfig cfg;
    cfg.epochs = 10;
    cfg.batch = 8;
    cfg.bptt = 12;
    cfg.lr = 2.0f;
    cfg.seed = static_cast<uint64_t>(s);

    cfg.warmup_epochs = 0;  // from scratch
    core::LmResult scratch = core::train_lm(factory(0), factory(12), corpus, cfg);
    cfg.warmup_epochs = 5;  // with vanilla warm-up (paper: 10 of 40)
    core::LmResult warm = core::train_lm(factory(0), factory(12), corpus, cfg);

    s_train.push_back(scratch.train_ppl);
    s_val.push_back(scratch.val_ppl);
    s_test.push_back(scratch.test_ppl);
    w_train.push_back(warm.train_ppl);
    w_val.push_back(warm.val_ppl);
    w_test.push_back(warm.test_ppl);
  }

  metrics::Table t({"metric", "low-rank LSTM (wo. warm-up)",
                    "low-rank LSTM (w. warm-up)", "paper (wo.)",
                    "paper (w.)"});
  t.add_row({"train ppl", cell(s_train), cell(w_train), "68.04 +- 2.98",
             "62.2 +- 0.74"});
  t.add_row({"val ppl", cell(s_val), cell(w_val), "97.59 +- 0.69",
             "93.62 +- 0.36"});
  t.add_row({"test ppl", cell(s_test), cell(w_test), "92.04 +- 0.54",
             "88.72 +- 0.24"});
  t.print();

  std::printf(
      "\nClaim check: paper finds warm-up lowers all three perplexities "
      "(92.04 -> 88.72 test). Ours: test ppl %.2f (warm-up) vs %.2f "
      "(scratch). Outcome note: at synthetic scale the low-rank LSTM "
      "optimizes unusually fast, so the from-scratch arm has no deficit to "
      "recover -- the warm-up effect lands within seed noise here (it "
      "reproduces strongly on the vision tasks, Tables 8/21/22). Recorded "
      "as a scale-dependent divergence in EXPERIMENTS.md.\n",
      metrics::mean_std(w_test).mean, metrics::mean_std(s_test).mean);
  return 0;
}
