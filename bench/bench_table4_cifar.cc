// Table 4: VGG-19 and ResNet-18 on CIFAR-10 -- params, test accuracy, MACs,
// for both FP32 and mixed-precision (AMP) training.
//
// Part A: the paper-size architectures reproduce Table 4's exact parameter
// counts and MAC figures. Part B: scaled training runs reproduce the
// behavioral claim -- Pufferfish matches vanilla accuracy at a fraction of
// the parameters, and the result is stable under (emulated) AMP.
#include "common.h"

using namespace bench;

namespace {

struct Arm {
  std::string name;
  core::VisionModelFactory vanilla, hybrid;  // hybrid null => vanilla run
  bool amp;
  core::VisionTrainConfig cfg;
  int64_t hw;
};

void run_arms(std::vector<Arm>& arms, int seeds) {
  metrics::Table t({"model", "# params", "test acc (%)"});
  for (Arm& arm : arms) {
    data::SyntheticImages ds =
        cifar_like(10, arm.hw, arm.hw == 32 ? 128 : 200,
                   arm.hw == 32 ? 64 : 100);
    std::vector<double> accs;
    int64_t params = 0;
    for (int s = 0; s < seeds; ++s) {
      core::VisionTrainConfig cfg = arm.cfg;
      cfg.seed = static_cast<uint64_t>(s);
      cfg.amp = arm.amp;
      core::VisionResult r =
          core::train_vision(arm.vanilla, arm.hybrid, ds, cfg);
      accs.push_back(100.0 * r.final_acc);
      params = r.params;
    }
    t.add_row({arm.name, metrics::fmt_int(params), cell(accs, 2)});
  }
  t.print();
}

}  // namespace

int main() {
  banner("Table 4: VGG-19 / ResNet-18 on CIFAR-10 (FP32 + AMP)",
         "Pufferfish Table 4 (Section 4.2)",
         "CIFAR-10 -> synthetic 32x32 (VGG) / 16x16 (ResNet) images; AMP -> "
         "fp16-grid weight emulation; width-scaled models for CPU training");

  {
    Rng rng(1);
    models::Vgg19 vv(models::VggConfig::vanilla(), rng);
    models::Vgg19 vp(models::VggConfig::pufferfish(10), rng);
    models::ResNet18Cifar rv(models::ResNetCifarConfig::vanilla(), rng);
    models::ResNet18Cifar rp(models::ResNetCifarConfig::pufferfish(), rng);
    metrics::Table t({"model (paper scale)", "# params (paper)",
                      "# params (ours)", "MACs G (paper)", "MACs G (ours)"});
    t.add_row({"Vanilla VGG-19", "20,560,330",
               metrics::fmt_int(vv.num_params()), "0.4",
               metrics::fmt(vv.forward_macs(32, 32) / 1e9, 3)});
    t.add_row({"Pufferfish VGG-19", "8,370,634",
               metrics::fmt_int(vp.num_params()), "0.29",
               metrics::fmt(vp.forward_macs(32, 32) / 1e9, 3)});
    t.add_row({"Vanilla ResNet-18", "11,173,834 (+128 BN, see notes)",
               metrics::fmt_int(rv.num_params()), "0.56",
               metrics::fmt(rv.forward_macs(32, 32) / 1e9, 3)});
    t.add_row({"Pufferfish ResNet-18", "3,336,138 (+128 BN, see notes)",
               metrics::fmt_int(rp.num_params()), "0.22",
               metrics::fmt(rp.forward_macs(32, 32) / 1e9, 3)});
    t.print();
    std::printf(
        "\nParameter ratios: VGG %.2fx smaller (paper 2.46x), ResNet-18 "
        "%.2fx smaller (paper 3.35x).\n\n",
        static_cast<double>(vv.num_params()) / vp.num_params(),
        static_cast<double>(rv.num_params()) / rp.num_params());
  }

  std::printf("Scaled training runs (test acc over seeds, mean +- std):\n\n");
  const int kSeedsVgg = 1, kSeedsResNet = 2;

  std::vector<Arm> vgg_arms;
  vgg_arms.push_back({"Vanilla VGG-19 (FP32)", make_vgg(0.125, 0), nullptr,
                      false, vgg_long_recipe(), 32});
  vgg_arms.push_back({"Pufferfish VGG-19 (FP32)", make_vgg(0.125, 0),
                      make_vgg(0.125, 10), false, vgg_long_recipe(), 32});
  vgg_arms.push_back({"Vanilla VGG-19 (AMP)", make_vgg(0.125, 0), nullptr,
                      true, vgg_long_recipe(), 32});
  vgg_arms.push_back({"Pufferfish VGG-19 (AMP)", make_vgg(0.125, 0),
                      make_vgg(0.125, 10), true, vgg_long_recipe(), 32});
  run_arms(vgg_arms, kSeedsVgg);
  std::printf("\n");

  std::vector<Arm> r18_arms;
  r18_arms.push_back({"Vanilla ResNet-18 (FP32)", make_resnet18(0.125, 0),
                      nullptr, false, resnet_recipe(), 16});
  r18_arms.push_back({"Pufferfish ResNet-18 (FP32)", make_resnet18(0.125, 0),
                      make_resnet18(0.125, 2), false, resnet_recipe(), 16});
  r18_arms.push_back({"Vanilla ResNet-18 (AMP)", make_resnet18(0.125, 0),
                      nullptr, true, resnet_recipe(), 16});
  r18_arms.push_back({"Pufferfish ResNet-18 (AMP)", make_resnet18(0.125, 0),
                      make_resnet18(0.125, 2), true, resnet_recipe(), 16});
  run_arms(r18_arms, kSeedsResNet);

  std::printf(
      "\nClaim checks (paper): Pufferfish within ~0.2%% of vanilla accuracy "
      "on both models; AMP rows within noise of FP32 rows. Compare the acc "
      "columns above.\n");
  return 0;
}
