// Figure 3: the two mitigation knobs.
//  (a) Hybrid-network sweep: final accuracy of hybrid VGG-19 as a function
//      of the first low-rank layer index K (paper: larger K recovers the
//      loss; K = 9 recovers ~0.6%).
//  (b) Warm-up sweep: final accuracy of hybrid ResNet as a function of the
//      vanilla warm-up epochs E_wu (paper: {2,5,10,15,20} on ImageNet;
//      a tuned middle value is best).
#include "common.h"

using namespace bench;

int main() {
  banner("Figure 3: hybrid-K sweep and warm-up-epoch sweep",
         "Pufferfish Figure 3 (Section 3)",
         "CIFAR-10/ImageNet -> synthetic tasks; width-scaled models");

  {
    std::printf("(a) hybrid VGG-19: final acc vs first low-rank layer K "
                "(from-scratch hybrids, no warm-up)\n");
    data::SyntheticImages ds = cifar_like();
    metrics::Table t({"K (first low-rank conv)", "# params",
                      "final test acc (%)"});
    for (int k : {2, 6, 9, 11, 13, 0}) {  // 0 = fully vanilla reference
      core::VisionTrainConfig cfg = vgg_recipe(18, 0);
      cfg.warmup_epochs = 0;
      core::VisionResult r = core::train_vision(
          make_vgg(0.125, 0),
          k == 0 ? core::VisionModelFactory{} : make_vgg(0.125, k), ds, cfg);
      t.add_row({k == 0 ? "vanilla (no factorization)" : std::to_string(k),
                 metrics::fmt_int(r.params),
                 metrics::fmt(100 * r.final_acc, 2)});
    }
    t.print();
    std::printf("claim: accuracy recovers toward vanilla as K grows (later "
                "layers only), while params shrink most for small K. At "
                "this scale the from-scratch hybrids are noisy single runs; "
                "read the trend, not individual cells.\n\n");
  }

  {
    std::printf("(b) fully-factorized ResNet-18: final acc vs vanilla "
                "warm-up epochs E_wu (total budget fixed; harder task so "
                "arms don't saturate; 3 seeds)\n");
    data::SyntheticImages ds = cifar_like(10, 16, 160, 100, 0.55f, 31);
    metrics::Table t({"E_wu", "final test acc (%)"});
    for (int ewu : {0, 1, 2, 3, 5}) {
      std::vector<double> accs;
      for (uint64_t seed = 0; seed < 3; ++seed) {
        core::VisionTrainConfig cfg = resnet_recipe(8, ewu, seed);
        // Fully factorized hybrid (every block low-rank): the arm with a
        // real from-scratch deficit for warm-up to repair.
        core::VisionResult r = core::train_vision(
            make_resnet18(0.125, 0), make_resnet18(0.125, 1), ds, cfg);
        accs.push_back(100 * r.final_acc);
      }
      t.add_row({std::to_string(ewu), cell(accs)});
    }
    t.print();
    std::printf(
        "claim: some warm-up beats none, but warming up too long starves "
        "the low-rank fine-tune (paper Fig 3(b) peaks mid-range).\n");
  }
  return 0;
}
