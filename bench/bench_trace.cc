// Overhead benchmark for pf::trace (src/trace).
//
// Measures (1) the raw cost of one PF_TRACE_SCOPE with the tracer disabled
// (the price every instrumented hot path pays on normal runs) and enabled,
// (2) how many spans a real training step records, (3) the implied
// disabled-tracer share of a step -- the "off-path is free" claim, gated at
// <= 1% and recorded in EXPERIMENTS.md -- plus a direct traced-vs-untraced
// wall-clock A/B of the same run. It then exports the two timeline
// artifacts the issue asks for: pf_trace_train.json (full Algorithm 1 run
// with warm-up -> SVD -> fine-tune plus one shm data-parallel epoch, so
// pool dispatch, kernels, reduce, and SVD spans share one timeline) and
// pf_trace_serve.json (batched serving via ServerConfig::trace_path), and
// prints the ASCII flame summary for the training timeline.
#include "common.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <future>
#include <vector>

#include "runtime/shm_cluster.h"
#include "runtime/thread_pool.h"
#include "serve/frozen.h"
#include "serve/server.h"
#include "trace/trace.h"

using namespace bench;

namespace {

// Cost of one Scope under the current tracer state. When disabled the body
// is one relaxed atomic load + branch; the load is observable behavior, so
// the loop cannot be folded away.
double scope_ns(int64_t reps) {
  metrics::Timer t;
  for (int64_t i = 0; i < reps; ++i) {
    PF_TRACE_SCOPE("bench.scope");
  }
  return t.seconds() * 1e9 / static_cast<double>(reps);
}

}  // namespace

int main() {
  banner("bench_trace: span-tracing overhead + timeline artifacts",
         "tooling (no paper table)",
         "chrome://tracing JSON over the scaled CPU substrate");

  runtime::set_threads(2);
  trace::set_enabled(false);

  // ---- 1. Raw Scope cost. ----
  const double off_ns = scope_ns(5'000'000);
  trace::set_enabled(true);
  trace::reset();
  const double on_ns = scope_ns(1'000'000);
  trace::reset();
  trace::set_enabled(false);
  std::printf("\nPF_TRACE_SCOPE cost: disabled %.2f ns/scope, enabled %.1f "
              "ns/scope\n", off_ns, on_ns);

  // ---- 2. Same training run, tracer hard-off vs recording. ----
  auto ds = cifar_like(/*classes=*/10, /*hw=*/16, /*train=*/64, /*test=*/32);
  core::VisionTrainConfig cfg = resnet_recipe(/*epochs=*/2, /*warmup=*/1);
  cfg.batch = 16;
  cfg.threads = 2;
  const auto vanilla = make_resnet18(0.125, 0);
  const auto hybrid = make_resnet18(0.125, 2);
  const double steps =
      cfg.epochs * std::ceil(static_cast<double>(64) / cfg.batch);

  metrics::Timer t_off;
  core::train_vision(vanilla, hybrid, ds, cfg);
  const double secs_off = t_off.seconds();

  trace::set_enabled(true);
  trace::reset();
  metrics::Timer t_on;
  core::train_vision(vanilla, hybrid, ds, cfg);
  const double secs_on = t_on.seconds();
  std::vector<trace::Event> events = trace::drain();
  const double spans_per_step = static_cast<double>(events.size()) / steps;

  // One shm data-parallel epoch in the same timeline so shm.compute /
  // shm.reduce spans appear next to the trainer's.
  runtime::ShmClusterConfig scfg;
  scfg.workers = 2;
  scfg.train.epochs = 1;
  scfg.train.global_batch = 16;
  scfg.train.seed = 5;
  runtime::ShmDataParallelTrainer shm(make_resnet18(0.125, 0), nullptr, scfg);
  shm.train_epoch(ds, 0);
  const std::vector<trace::Event> shm_events = trace::drain();
  events.insert(events.end(), shm_events.begin(), shm_events.end());
  trace::set_enabled(false);

  {
    std::ofstream os("pf_trace_train.json", std::ios::binary);
    os << trace::to_chrome_json(events);
  }
  std::printf("[trace] training timeline: %zu spans, %llu dropped, exported "
              "pf_trace_train.json\n", events.size(),
              static_cast<unsigned long long>(trace::dropped()));

  // ---- 3. Disabled-overhead gate. ----
  const double step_ns_off = secs_off / steps * 1e9;
  const double est_pct = 100.0 * off_ns * spans_per_step / step_ns_off;
  const double ab_pct = 100.0 * (secs_on - secs_off) / secs_off;
  std::printf("\ntraining: %.0f spans/step, untraced step %.2f ms\n",
              spans_per_step, step_ns_off / 1e6);
  std::printf("disabled-tracer overhead: %.2f ns/scope x %.0f spans/step = "
              "%.4f%% of step time -- %s (gate: <= 1%%)\n", off_ns,
              spans_per_step, est_pct, est_pct <= 1.0 ? "PASS" : "FAIL");
  std::printf("recording-tracer A/B on the same run: %.3fs -> %.3fs "
              "(%+.1f%%)\n", secs_off, secs_on, ab_pct);

  // ---- 4. Serving timeline via ServerConfig::trace_path. ----
  Rng rng(7);
  serve::FrozenModel frozen(make_resnet18(0.125, 2)(rng), "bench-trace");
  frozen.prime(Shape{3, 16, 16}, 8);
  serve::ServerConfig sv;
  sv.workers = 2;
  sv.batcher.max_batch = 8;
  sv.trace_path = "pf_trace_serve.json";
  serve::Server server(frozen, sv);
  server.start();
  std::vector<serve::RequestPtr> reqs;
  std::vector<std::future<void>> done;
  for (int i = 0; i < 32; ++i) {
    Rng in(100 + static_cast<uint64_t>(i));
    reqs.push_back(serve::make_request(static_cast<uint64_t>(i),
                                       in.randn(Shape{3, 16, 16})));
    done.push_back(reqs.back()->done.get_future());
    server.submit(reqs.back());
  }
  for (std::future<void>& f : done) f.wait();
  server.stop();
  std::printf("[trace] serve timeline: 32 requests, exported "
              "pf_trace_serve.json (serve.queue / serve.flush / "
              "serve.forward / serve.reply per batch)\n");

  std::printf("\nTraining flame summary (self time):\n%s\n",
              trace::flame_summary(events).c_str());
  std::printf(
      "Load either JSON in chrome://tracing or https://ui.perfetto.dev.\n");
  return est_pct <= 1.0 ? 0 : 1;
}
