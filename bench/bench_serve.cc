// Serving bench: Pufferfish's "smaller model at no extra cost" claim pushed
// through the whole serving stack (DESIGN.md §14).
//
//  1. Single-model SLO table: vanilla vs SVD-warm-started hybrid ResNet-18
//     through the batched server under identical closed-loop load (the
//     original Tables 4/14 restatement).
//  2. Quantization gate: post-training int8 on the hybrid must pass the
//     accuracy gate (eval-accuracy drop <= 0.5 points vs fp32).
//  3. Models-per-GB: resident density fp32/int8/bf16 (plan::serve_density)
//     and artifact/catalog density for delta-compressed tenant variants --
//     one shared base plus per-tenant low-rank deltas.
//  4. Fleet p99 under mixed traffic: three SLO classes served by one
//     weighted-EDF fleet under a diurnal/bursty trace; per-class p99 is
//     compared against each engine's single-model open-loop baseline.
//  5. [alloc] zero steady-state allocations for frozen engines.
//
// --smoke shrinks every knob for the CI target (pf_bench_serve_smoke);
// --json[=path] emits the machine-readable report.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common.h"
#include "core/factorize.h"
#include "nn/serialize.h"
#include "optim/optim.h"
#include "plan/serve_density.h"
#include "quant/delta.h"
#include "quant/qcheckpoint.h"
#include "quant/quantize.h"
#include "runtime/buffer_pool.h"
#include "runtime/thread_pool.h"
#include "serve/fleet.h"
#include "serve/server.h"

namespace {

using namespace bench;

constexpr int64_t kHw = 16;
constexpr int64_t kClasses = 10;
constexpr double kWidth = 0.25;

bool g_smoke = false;

// Minimal SGD loop (the serving bench needs the trained *module* back,
// which train_vision's result struct does not carry).
void fit(pf::nn::UnaryModule& model, const pf::data::SyntheticImages& ds,
         int epochs, float lr, int first_epoch = 0) {
  pf::optim::SGD opt(model.parameters(), lr, /*momentum=*/0.9f,
                     /*weight_decay=*/1e-4f);
  model.train(true);
  for (int e = 0; e < epochs; ++e) {
    for (const pf::data::ImageBatch& b :
         ds.train_batches(/*batch=*/32, first_epoch + e)) {
      model.zero_grad();
      pf::ag::Var logits = model.forward(pf::ag::leaf(b.images));
      pf::ag::Var loss = pf::ag::cross_entropy(logits, b.labels);
      pf::ag::backward(loss);
      opt.step();
    }
  }
  model.train(false);
}

std::unique_ptr<pf::nn::UnaryModule> build_resnet(double rank_ratio,
                                                  uint64_t seed) {
  pf::Rng r(seed);
  pf::models::ResNetCifarConfig c;
  c.width_mult = kWidth;
  c.num_classes = kClasses;
  if (rank_ratio > 0) {
    c.first_lowrank_block = 2;
    c.rank_ratio = rank_ratio;
  }
  return std::make_unique<pf::models::ResNet18Cifar>(c, r);
}

pf::serve::RequestFactory vision_requests(uint64_t salt) {
  return [salt](uint64_t id) {
    pf::Rng rng(0x9E3779B9u + salt * 0x10001u + id);
    return pf::serve::make_request(id, rng.randn(pf::Shape{3, kHw, kHw}));
  };
}

// Serve `engine` alone under saturating closed-loop load.
pf::metrics::ServeReport drive_closed(pf::serve::Engine& engine,
                                      double deadline_ms) {
  pf::serve::ServerConfig cfg;
  cfg.workers = 2;
  cfg.batcher.max_batch = 8;
  cfg.batcher.deadline_ms = deadline_ms;
  pf::metrics::ServeStats stats;
  stats.begin();
  pf::serve::Server server(engine, cfg, &stats);
  server.start();
  pf::serve::ClosedLoopConfig load;
  load.clients = g_smoke ? 3 : 6;
  load.requests_per_client = g_smoke ? 12 : 48;
  run_closed_loop(server, vision_requests(0), load);
  server.stop();
  return stats.report();
}

// Single-model open-loop baseline at the same rate the fleet will offer.
pf::metrics::ServeReport drive_solo_open(pf::serve::Engine& engine,
                                         double rate_rps, int total) {
  pf::serve::ServerConfig cfg;
  cfg.workers = 2;
  cfg.batcher.max_batch = 8;
  cfg.batcher.deadline_ms = 2.0;
  pf::metrics::ServeStats stats;
  stats.begin();
  pf::serve::Server server(engine, cfg, &stats);
  server.start();
  pf::serve::OpenLoopConfig load;
  load.rate_rps = rate_rps;
  load.total_requests = total;
  run_open_loop(server, vision_requests(1), load);
  server.stop();
  return stats.report();
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) g_smoke = true;
  std::string json_path;
  const bool want_json = JsonReport::wants_json(argc, argv, &json_path);
  JsonReport report;

  banner("Serving: quantized + delta-compressed engines and fleet SLOs",
         "Pufferfish Tables 4/14 (compute at no extra cost) extended to "
         "multi-model serving density",
         "synthetic CIFAR-like data, scaled ResNet-18, CPU load generators");
  pf::runtime::set_threads(4);

  const int64_t train_n = g_smoke ? 64 : 256, test_n = g_smoke ? 32 : 128;
  const int epochs = g_smoke ? 1 : 6, ft_epochs = g_smoke ? 1 : 2;
  pf::data::SyntheticImages ds = cifar_like(kClasses, kHw, train_n, test_n);
  auto eval_acc = [&ds](pf::nn::Module& m) {
    return pf::core::evaluate_vision(dynamic_cast<pf::nn::UnaryModule&>(m),
                                     ds, /*batch=*/32)
        .acc;
  };

  // ---- Train once: vanilla, then an SVD-warm-started hybrid. ----
  std::printf("training vanilla ResNet-18 (width %.2f) ...\n", kWidth);
  auto vanilla = build_resnet(0, 0);
  fit(*vanilla, ds, epochs, 0.05f);
  std::printf("warm-starting hybrid (rank ratio 0.25) + fine-tune ...\n");
  auto hybrid = build_resnet(0.25, 1);
  pf::Rng wr(1);
  pf::core::warm_start(*vanilla, *hybrid, wr);
  fit(*hybrid, ds, ft_epochs, 0.005f, epochs);

  const std::string base_ckpt = "/tmp/bench_serve_base.ckpt";
  const std::string hybrid_ckpt = "/tmp/bench_serve_hybrid.ckpt";
  pf::nn::save_checkpoint(*vanilla, base_ckpt);
  pf::nn::save_checkpoint(*hybrid, hybrid_ckpt);

  // ---- 1. Single-model SLO table (closed loop). ----
  std::printf("\n== single-model serving (closed loop, batch<=8, "
              "2 workers, deadline 2.0 ms) ==\n");
  struct Row {
    std::string name;
    int64_t params;
    double acc;
    pf::metrics::ServeReport rep;
  };
  std::vector<Row> rows;
  {
    auto mk_frozen = [&](double rr, const std::string& ckpt,
                         const std::string& name) {
      auto m = build_resnet(rr, 10 + static_cast<uint64_t>(rr * 8));
      auto f = std::make_unique<pf::serve::FrozenModel>(std::move(m), name,
                                                        ckpt);
      f->prime(pf::Shape{3, kHw, kHw}, 8);
      return f;
    };
    auto fv = mk_frozen(0, base_ckpt, "resnet18-vanilla");
    auto fh = mk_frozen(0.25, hybrid_ckpt, "resnet18-hybrid-r0.25");
    rows.push_back({"resnet18-vanilla", fv->num_params(), eval_acc(fv->module()),
                    drive_closed(*fv, 2.0)});
    rows.push_back({"resnet18-hybrid-r0.25", fh->num_params(),
                    eval_acc(fh->module()), drive_closed(*fh, 2.0)});
  }
  {
    pf::metrics::Table t({"model", "params", "test acc", "req/s", "p50(ms)",
                          "p95(ms)", "p99(ms)"});
    for (const Row& r : rows)
      t.add_row({r.name, pf::metrics::fmt_int(r.params),
                 pf::metrics::fmt(100 * r.acc, 2),
                 pf::metrics::fmt(r.rep.throughput_rps, 1),
                 pf::metrics::fmt(r.rep.p50_ms, 2),
                 pf::metrics::fmt(r.rep.p95_ms, 2),
                 pf::metrics::fmt(r.rep.p99_ms, 2)});
    t.print();
    std::printf("hybrid/vanilla throughput: %s\n",
                pf::metrics::fmt_ratio(rows[1].rep.throughput_rps /
                                       rows[0].rep.throughput_rps)
                    .c_str());
    report.section("single_model");
    report.kv("vanilla_rps", rows[0].rep.throughput_rps);
    report.kv("hybrid_rps", rows[1].rep.throughput_rps);
    report.kv("vanilla_acc", rows[0].acc);
    report.kv("hybrid_acc", rows[1].acc);
  }

  // ---- 2. Quantization accuracy gate (int8, eps = 0.5 points). ----
  std::printf("\n== int8 quantization gate (eps 0.5 acc points) ==\n");
  pf::quant::QuantSpec qspec;  // int8, per-output-row scales
  pf::quant::GateResult gate =
      pf::quant::quantize_if(*hybrid, qspec, /*eps=*/0.005, eval_acc);
  std::printf("  fp32 acc %.2f%% -> int8 acc %.2f%% (drop %.2f pts): %s\n",
              100 * gate.fp32_metric, 100 * gate.quant_metric,
              100 * (gate.fp32_metric - gate.quant_metric),
              gate.accepted ? "ACCEPTED" : "REJECTED (fp32 fallback)");
  std::printf("  serving bytes: fp32 %s -> int8 %s (%s)\n",
              pf::metrics::fmt_bytes(gate.bytes_fp32).c_str(),
              pf::metrics::fmt_bytes(gate.bytes_quant).c_str(),
              pf::metrics::fmt_ratio(static_cast<double>(gate.bytes_fp32) /
                                     static_cast<double>(gate.bytes_quant))
                  .c_str());
  report.section("quant_gate");
  report.kv("acc_fp32", gate.fp32_metric);
  report.kv("acc_int8", gate.quant_metric);
  report.kv("drop_points", 100 * (gate.fp32_metric - gate.quant_metric));
  report.kv("accepted", gate.accepted ? 1.0 : 0.0);
  report.kv("bytes_fp32", static_cast<double>(gate.bytes_fp32));
  report.kv("bytes_int8", static_cast<double>(gate.bytes_quant));
  if (gate.accepted) pf::quant::rollback(*hybrid);  // keep fp32 master copy

  // ---- 3. Models-per-GB: resident density + delta-variant catalog. ----
  std::printf("\n== models-per-GB ==\n");
  const pf::dist::HardwareProfile hw = pf::dist::HardwareProfile::cloud_10g();
  pf::plan::ServeDensity dens =
      pf::plan::serve_density("resnet18", kWidth, kClasses, 0.25, 2, hw);
  std::printf("  resident (%s, %s serve mem): %s\n", dens.model.c_str(),
              pf::metrics::fmt_bytes(hw.serve_mem_bytes).c_str(),
              dens.summary().c_str());

  // Per-tenant fine-tune of the shared base, shipped as a low-rank delta.
  std::printf("  fine-tuning a tenant variant of the base ...\n");
  auto tenant = build_resnet(0, 2);
  pf::nn::load_checkpoint(*tenant, base_ckpt);
  fit(*tenant, ds, /*epochs=*/1, 0.005f, /*first_epoch=*/epochs + 3);
  pf::quant::DeltaSpec dspec;
  dspec.energy = 0.9;
  dspec.max_rank = g_smoke ? 2 : 4;
  pf::quant::DeltaModel delta = pf::quant::compute_delta(*vanilla, *tenant,
                                                         dspec);
  const std::string delta_path = "/tmp/bench_serve_tenant.delta";
  const std::string int8_path = "/tmp/bench_serve_hybrid.q8";
  pf::quant::save_delta(delta, delta_path);
  {
    auto q = build_resnet(0.25, 3);
    pf::nn::load_checkpoint(*q, hybrid_ckpt);
    pf::quant::quantize_module(*q, qspec);
    pf::quant::commit(*q);
    pf::quant::save_quantized(*q, int8_path);
  }
  const int64_t fp32_art = pf::quant::file_bytes(base_ckpt);
  const int64_t int8_art = pf::quant::file_bytes(int8_path);
  const int64_t delta_art = pf::quant::file_bytes(delta_path);
  const double gb = static_cast<double>(1ll << 30);
  // Marginal density: what one MORE model of each format costs. Delta
  // variants share the base, so their marginal cost is just the delta.
  pf::metrics::Table t({"artifact", "bytes", "models/GB (marginal)",
                        "density vs fp32"});
  auto dens_row = [&](const std::string& name, int64_t bytes) {
    t.add_row({name, pf::metrics::fmt_bytes(bytes),
               pf::metrics::fmt(gb / static_cast<double>(bytes), 1),
               pf::metrics::fmt_ratio(static_cast<double>(fp32_art) /
                                      static_cast<double>(bytes))});
  };
  dens_row("fp32 checkpoint (v1)", fp32_art);
  dens_row("int8 quantized (v2)", int8_art);
  dens_row("delta variant (v2, shared base)", delta_art);
  t.print();
  const double delta_density = static_cast<double>(fp32_art) /
                               static_cast<double>(delta_art);
  std::printf("  delta-variant density vs fp32: %s (target >= 3x) -- "
              "%" PRId64 "-tensor delta, %" PRId64 " low-rank\n",
              pf::metrics::fmt_ratio(delta_density).c_str(),
              static_cast<int64_t>(delta.entries.size()),
              delta.lowrank_entries());
  report.section("models_per_gb");
  report.kv("fp32_artifact_bytes", static_cast<double>(fp32_art));
  report.kv("int8_artifact_bytes", static_cast<double>(int8_art));
  report.kv("delta_artifact_bytes", static_cast<double>(delta_art));
  report.kv("resident_fp32_per_gb", dens.fp32_per_gb);
  report.kv("resident_int8_per_gb", dens.int8_per_gb);
  report.kv("delta_density_vs_fp32", delta_density);

  // ---- 4. Fleet p99 under mixed diurnal/bursty traffic. ----
  std::printf("\n== fleet: 3 SLO classes, weighted-EDF, 2 workers ==\n");
  struct ClassDef {
    std::string name;
    pf::serve::SloClass slo;
    double rate;  // steady per-phase arrival rate (rps)
    pf::serve::EngineFactory factory;
  };
  auto base_factory = [&]() -> std::unique_ptr<pf::serve::Engine> {
    auto m = build_resnet(0, 20);
    auto f = std::make_unique<pf::serve::FrozenModel>(std::move(m),
                                                      "base-fp32", base_ckpt);
    f->prime(pf::Shape{3, kHw, kHw}, 8);
    return f;
  };
  auto hybrid_int8_factory = [&]() -> std::unique_ptr<pf::serve::Engine> {
    auto m = build_resnet(0.25, 21);
    pf::nn::load_checkpoint(*m, hybrid_ckpt);
    pf::quant::quantize_module(*m, qspec);
    pf::quant::commit(*m);
    auto f = std::make_unique<pf::serve::FrozenModel>(std::move(m),
                                                      "hybrid-int8", "");
    f->prime(pf::Shape{3, kHw, kHw}, 8);
    return f;
  };
  auto tenant_delta_factory = [&]() -> std::unique_ptr<pf::serve::Engine> {
    auto m = build_resnet(0, 22);
    pf::nn::load_checkpoint(*m, base_ckpt);
    pf::quant::apply_delta(*m, pf::quant::load_delta(delta_path));
    pf::quant::quantize_module(*m, qspec);
    pf::quant::commit(*m);
    auto f = std::make_unique<pf::serve::FrozenModel>(std::move(m),
                                                      "tenant-delta-int8", "");
    f->prime(pf::Shape{3, kHw, kHw}, 8);
    return f;
  };
  const double r0 = g_smoke ? 30 : 60;
  std::vector<ClassDef> classes;
  classes.push_back({"interactive", {25.0, 2.0}, r0, hybrid_int8_factory});
  classes.push_back({"standard", {50.0, 1.0}, r0 * 0.75, base_factory});
  classes.push_back({"batch", {200.0, 0.5}, r0 * 0.5, tenant_delta_factory});

  // Solo baselines: each engine alone on an identical 2-worker server at
  // the same average rate the fleet sees.
  std::vector<pf::metrics::ServeReport> solo;
  for (ClassDef& c : classes) {
    auto engine = c.factory();
    solo.push_back(drive_solo_open(*engine, c.rate,
                                   g_smoke ? 24 : 96));
  }

  // The fleet, under a diurnal/bursty trace with the same average rates:
  // ramp (half rate) -> peak (full rate) -> one tenant bursting to 2x while
  // the others trough -> cooldown.
  pf::metrics::FleetStats fstats;
  pf::serve::FleetConfig fcfg;
  fcfg.workers = 2;
  pf::serve::Fleet fleet(fcfg, &fstats);
  for (ClassDef& c : classes) {
    pf::serve::FleetModelConfig mc;
    mc.name = c.name;
    mc.factory = c.factory;
    mc.batcher.max_batch = 8;
    mc.batcher.deadline_ms = 2.0;
    mc.slo = c.slo;
    fstats.add_model(c.name);
    fleet.add_model(std::move(mc));
  }
  const double phase_s = g_smoke ? 0.2 : 0.5;
  pf::serve::TraceConfig trace;
  trace.phases = {
      {phase_s, {classes[0].rate / 2, classes[1].rate / 2, classes[2].rate / 2}},
      {phase_s, {classes[0].rate, classes[1].rate, classes[2].rate}},
      {phase_s, {classes[0].rate / 4, classes[1].rate / 4, classes[2].rate * 2}},
      {phase_s, {classes[0].rate, classes[1].rate, classes[2].rate / 2}},
  };
  // Warm fleet: materialize every engine up front so the p99 comparison
  // measures scheduling, not first-request engine construction (lazy
  // materialization itself is covered by fleet_test).
  for (size_t i = 0; i < classes.size(); ++i)
    fleet.materialize(static_cast<int>(i));
  fstats.begin();
  fleet.start();
  std::vector<pf::serve::RequestFactory> makers = {
      vision_requests(2), vision_requests(3), vision_requests(4)};
  std::vector<int64_t> completed =
      pf::serve::run_trace_open_loop(fleet, makers, trace);
  fleet.stop();
  pf::metrics::FleetReport frep = fstats.report();

  pf::metrics::Table ft({"class", "SLO(ms)", "weight", "done", "req/s",
                         "p99 solo(ms)", "p99 fleet(ms)", "SLO met"});
  bool any_regressed = false;
  report.section("fleet");
  for (size_t i = 0; i < classes.size(); ++i) {
    const pf::metrics::ServeReport& fr = frep.models[i];
    const bool solo_met = solo[i].p99_ms <= classes[i].slo.deadline_ms;
    const bool fleet_met = fr.p99_ms <= classes[i].slo.deadline_ms;
    const bool regressed = solo_met && !fleet_met;
    any_regressed = any_regressed || regressed;
    ft.add_row({classes[i].name,
                pf::metrics::fmt(classes[i].slo.deadline_ms, 0),
                pf::metrics::fmt(classes[i].slo.weight, 1),
                pf::metrics::fmt_int(completed[i]),
                pf::metrics::fmt(fr.throughput_rps, 1),
                pf::metrics::fmt(solo[i].p99_ms, 2),
                pf::metrics::fmt(fr.p99_ms, 2),
                fleet_met ? "yes" : (regressed ? "REGRESSED" : "no")});
    report.kv(classes[i].name + "_p99_solo_ms", solo[i].p99_ms);
    report.kv(classes[i].name + "_p99_fleet_ms", fr.p99_ms);
    report.kv(classes[i].name + "_completed",
              static_cast<double>(completed[i]));
  }
  ft.print();
  std::printf("  %s; fleet total: %s\n",
              any_regressed ? "SLO REGRESSION vs single-model baseline"
                            : "no SLO class regressed vs single-model "
                              "baseline",
              frep.total.summary().c_str());
  report.kv("any_regressed", any_regressed ? 1.0 : 0.0);

  // ---- 5. Zero-allocation steady state (the BufferPool contract). ----
  {
    auto m = build_resnet(0, 30);
    pf::serve::FrozenModel frozen(std::move(m), "steady");
    frozen.prime(pf::Shape{3, kHw, kHw}, 8);
    pf::Rng xr(4);
    pf::Tensor x = xr.randn(pf::Shape{8, 3, kHw, kHw});
    frozen.forward(x);
    pf::metrics::reset_alloc_stats(false);
    for (int i = 0; i < (g_smoke ? 8 : 32); ++i) frozen.forward(x);
    alloc_section_end("steady-state serving, batched forwards");
    const pf::metrics::AllocStats s = pf::metrics::alloc_stats();
    if (pf::runtime::BufferPool::instance().enabled())
      std::printf("  -> %s system allocations per request\n",
                  s.sys_allocs == 0 ? "ZERO" : "NONZERO (regression!)");
  }

  std::remove(base_ckpt.c_str());
  std::remove(hybrid_ckpt.c_str());
  std::remove(delta_path.c_str());
  std::remove(int8_path.c_str());
  if (want_json) report.emit("bench_serve", json_path);
  return 0;
}
