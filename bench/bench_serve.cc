// Serving bench: the paper's "smaller model at no accuracy cost" claim,
// restated as an inference-serving table. Train a vanilla ResNet-18, warm-
// start hybrids from it (truncated SVD) and fine-tune briefly, then serve
// vanilla and hybrids through the same batched server under identical
// closed-loop load: the hybrid must clear strictly higher requests/second
// at matching accuracy, with p50/p95/p99 latency SLO percentiles to show
// the tail moves too. A second table repeats the comparison for the LSTM
// LM engine, and an [alloc] line certifies the zero-steady-state-
// allocation property of the frozen engines.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common.h"
#include "core/factorize.h"
#include "nn/serialize.h"
#include "optim/optim.h"
#include "runtime/buffer_pool.h"
#include "runtime/thread_pool.h"
#include "serve/server.h"

namespace {

using namespace bench;

constexpr int64_t kHw = 16;
constexpr int64_t kClasses = 10;

// Minimal SGD loop (the serving bench needs the trained *module* back,
// which train_vision's result struct does not carry).
void fit(pf::nn::UnaryModule& model, const pf::data::SyntheticImages& ds,
         int epochs, float lr, int first_epoch = 0) {
  pf::optim::SGD opt(model.parameters(), lr, /*momentum=*/0.9f,
                     /*weight_decay=*/1e-4f);
  model.train(true);
  for (int e = 0; e < epochs; ++e) {
    for (const pf::data::ImageBatch& b :
         ds.train_batches(/*batch=*/32, first_epoch + e)) {
      model.zero_grad();
      pf::ag::Var logits = model.forward(pf::ag::leaf(b.images));
      pf::ag::Var loss = pf::ag::cross_entropy(logits, b.labels);
      pf::ag::backward(loss);
      opt.step();
    }
  }
}

struct ServeRow {
  std::string model;
  int64_t params = 0;
  double acc = -1;  // <0 = not applicable
  double deadline_ms = 0;
  pf::metrics::ServeReport rep;
};

// Serve `engine` under saturating closed-loop load and report the SLO view.
pf::metrics::ServeReport drive(pf::serve::Engine& engine, double deadline_ms,
                               const pf::serve::RequestFactory& make) {
  pf::serve::ServerConfig cfg;
  cfg.workers = 2;
  cfg.batcher.max_batch = 8;
  cfg.batcher.deadline_ms = deadline_ms;
  pf::metrics::ServeStats stats;
  stats.begin();
  pf::serve::Server server(engine, cfg, &stats);
  server.start();
  pf::serve::ClosedLoopConfig load;
  load.clients = 6;
  load.requests_per_client = 48;
  run_closed_loop(server, make, load);
  server.stop();
  return stats.report();
}

void print_rows(const std::vector<ServeRow>& rows) {
  pf::metrics::Table t({"model", "params", "test acc", "deadline(ms)",
                        "mean batch", "req/s", "p50(ms)", "p95(ms)",
                        "p99(ms)"});
  for (const ServeRow& r : rows) {
    t.add_row({r.model, pf::metrics::fmt_int(r.params),
               r.acc < 0 ? "-" : pf::metrics::fmt(100 * r.acc, 2),
               pf::metrics::fmt(r.deadline_ms, 1),
               pf::metrics::fmt(r.rep.mean_batch, 2),
               pf::metrics::fmt(r.rep.throughput_rps, 1),
               pf::metrics::fmt(r.rep.p50_ms, 2),
               pf::metrics::fmt(r.rep.p95_ms, 2),
               pf::metrics::fmt(r.rep.p99_ms, 2)});
  }
  t.print();
}

pf::serve::RequestFactory vision_factory() {
  return [](uint64_t id) {
    pf::Rng rng(0x9E3779B9u + id);
    return pf::serve::make_request(id, rng.randn(pf::Shape{3, kHw, kHw}));
  };
}

}  // namespace

int main() {
  banner("Serving: batched inference with frozen engines",
         "Pufferfish Tables 4/14 (compute at no extra cost), as a serving "
         "SLO table",
         "synthetic CIFAR-like data, scaled ResNet-18/LSTM, CPU closed-loop "
         "clients");
  pf::runtime::set_threads(4);
  const std::vector<double> deadlines = {0.5, 2.0};

  // ---- Train once: vanilla, then SVD-warm-started hybrids fine-tuned. ----
  pf::data::SyntheticImages ds = cifar_like(kClasses, kHw, 256, 128);
  pf::Rng rng(0);
  std::printf("training vanilla ResNet-18 (width 0.25) ...\n");
  auto vanilla = make_resnet18(0.25, /*first_lowrank_block=*/0, kClasses)(rng);
  fit(*vanilla, ds, /*epochs=*/6, /*lr=*/0.05f);

  struct Variant {
    std::string name;
    double rank_ratio;
    std::unique_ptr<pf::nn::UnaryModule> model;
  };
  std::vector<Variant> variants;
  variants.push_back({"resnet18-vanilla", 0.0, std::move(vanilla)});
  for (double rr : {0.25, 0.125}) {
    std::printf("warm-starting hybrid (rank ratio %.3f) + fine-tune ...\n",
                rr);
    pf::Rng hr(1);
    pf::models::ResNetCifarConfig hcfg;
    hcfg.width_mult = 0.25;
    hcfg.first_lowrank_block = 2;
    hcfg.rank_ratio = rr;
    hcfg.num_classes = kClasses;
    auto hybrid = std::make_unique<pf::models::ResNet18Cifar>(hcfg, hr);
    pf::core::warm_start(*variants[0].model, *hybrid, hr);
    fit(*hybrid, ds, /*epochs=*/2, /*lr=*/0.005f, /*first_epoch=*/6);
    variants.push_back({"resnet18-hybrid-r" + pf::metrics::fmt(rr, 3), rr,
                        std::move(hybrid)});
  }

  // ---- Freeze through the v1 checkpoint path and serve. ----
  std::vector<ServeRow> rows;
  for (Variant& v : variants) {
    const double acc =
        pf::core::evaluate_vision(*v.model, ds, /*batch=*/32).acc;
    const std::string ckpt = "/tmp/bench_serve_" + v.name + ".ckpt";
    pf::nn::save_checkpoint(*v.model, ckpt);
    pf::Rng fr(2);
    pf::models::ResNetCifarConfig fcfg;
    fcfg.width_mult = 0.25;
    fcfg.first_lowrank_block = v.rank_ratio > 0 ? 2 : 0;
    if (v.rank_ratio > 0) fcfg.rank_ratio = v.rank_ratio;
    fcfg.num_classes = kClasses;
    pf::serve::FrozenModel frozen(
        std::make_unique<pf::models::ResNet18Cifar>(fcfg, fr), v.name, ckpt);
    frozen.prime(pf::Shape{3, kHw, kHw}, 8);
    for (double dl : deadlines) {
      ServeRow row;
      row.model = v.name;
      row.params = frozen.num_params();
      row.acc = acc;
      row.deadline_ms = dl;
      row.rep = drive(frozen, dl, vision_factory());
      rows.push_back(std::move(row));
      std::printf("  %-24s deadline %.1fms: %s\n", v.name.c_str(), dl,
                  rows.back().rep.summary().c_str());
    }
    std::remove(ckpt.c_str());
  }
  std::printf("\n== ResNet-18 serving (closed loop, 6 clients, batch<=8, "
              "2 workers) ==\n");
  print_rows(rows);
  const double rps_vanilla = rows[1].rep.throughput_rps;    // 2.0ms row
  const double rps_hybrid = rows[3].rep.throughput_rps;     // rank 0.25 row
  std::printf("hybrid/vanilla throughput: %s at accuracy %+.2f pts\n",
              pf::metrics::fmt_ratio(rps_hybrid / rps_vanilla).c_str(),
              100 * (rows[2].acc - rows[0].acc));

  // ---- Zero-allocation steady state (the BufferPool contract). ----
  {
    pf::Rng fr(3);
    pf::models::ResNetCifarConfig fcfg;
    fcfg.width_mult = 0.25;
    fcfg.num_classes = kClasses;
    pf::serve::FrozenModel frozen(
        std::make_unique<pf::models::ResNet18Cifar>(fcfg, fr), "steady");
    frozen.prime(pf::Shape{3, kHw, kHw}, 8);
    pf::Rng xr(4);
    pf::Tensor x = xr.randn(pf::Shape{8, 3, kHw, kHw});
    frozen.forward(x);
    pf::metrics::reset_alloc_stats(false);
    for (int i = 0; i < 32; ++i) frozen.forward(x);
    alloc_section_end("steady-state serving, 32 batched forwards");
    const pf::metrics::AllocStats s = pf::metrics::alloc_stats();
    if (pf::runtime::BufferPool::instance().enabled())
      std::printf("  -> %s system allocations per request\n",
                  s.sys_allocs == 0 ? "ZERO" : "NONZERO (regression!)");
  }

  // ---- LSTM LM engine: vanilla vs low-rank, same serving harness. ----
  std::printf("\n== LSTM LM serving (next-token logits, seq len 16) ==\n");
  constexpr int64_t kSeq = 16;
  std::vector<ServeRow> lstm_rows;
  for (int64_t rank : {int64_t{0}, int64_t{16}}) {
    pf::Rng lr(5);
    pf::models::LstmLmConfig lcfg = pf::models::LstmLmConfig::tiny(rank);
    auto lm = std::make_unique<pf::models::LstmLm>(lcfg, lr);
    const std::string name =
        rank ? "lstm-lowrank-r" + std::to_string(rank) : "lstm-vanilla";
    pf::serve::FrozenLstm frozen(std::move(lm), kSeq, name);
    frozen.prime(8);
    const int64_t vocab = lcfg.vocab;
    for (double dl : deadlines) {
      ServeRow row;
      row.model = name;
      row.params = frozen.num_params();
      row.deadline_ms = dl;
      row.rep = drive(frozen, dl, [vocab](uint64_t id) {
        pf::Rng rng(0xC0FFEEu + id);
        std::vector<int64_t> toks(kSeq);
        for (auto& t : toks) t = rng.uniform_int(vocab);
        return pf::serve::make_request(id, std::move(toks));
      });
      lstm_rows.push_back(std::move(row));
      std::printf("  %-24s deadline %.1fms: %s\n", name.c_str(), dl,
                  lstm_rows.back().rep.summary().c_str());
    }
  }
  print_rows(lstm_rows);
  std::printf(
      "lowrank/vanilla throughput: %s\n",
      pf::metrics::fmt_ratio(lstm_rows[3].rep.throughput_rps /
                             lstm_rows[1].rep.throughput_rps)
          .c_str());
  return 0;
}
