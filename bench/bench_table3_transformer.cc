// Table 3: vanilla vs Pufferfish 6-layer Transformer on WMT16 De-En.
//
// Part A: exact paper-size parameter counts (48,978,432 vs 26,696,192).
// Part B: behavioral reproduction on the synthetic translation task --
// the factorized Transformer should match or beat the vanilla one on
// validation perplexity / BLEU (the paper attributes this to implicit
// regularization), at roughly half the parameters. 3 seeds.
#include "common.h"

#include <cmath>

using namespace bench;

int main() {
  banner("Table 3: Transformer on WMT16",
         "Pufferfish Table 3 (Section 4.2)",
         "WMT16 -> synthetic transduction pairs; paper-size counts exact");

  {
    Rng rng(1);
    models::TransformerMT vanilla(models::TransformerConfig::paper_vanilla(),
                                  rng);
    models::TransformerMT pf(models::TransformerConfig::paper_pufferfish(),
                             rng);
    metrics::Table t({"metric", "vanilla (paper)", "vanilla (ours)",
                      "Pufferfish (paper)", "Pufferfish (ours)"});
    t.add_row({"# params", "48,978,432",
               metrics::fmt_int(vanilla.num_params()), "26,696,192",
               metrics::fmt_int(pf.num_params())});
    t.print();
  }

  std::printf("\nTraining at synthetic scale (3 seeds, mean +- std):\n\n");
  data::SyntheticTranslation::Config tc;
  tc.train_pairs = 160;
  tc.test_pairs = 32;
  tc.min_len = 3;
  tc.max_len = 5;
  tc.vocab = 32;
  data::SyntheticTranslation ds(tc);

  auto factory = [](int first_lowrank) {
    return [first_lowrank](Rng& rng) {
      models::TransformerConfig c = models::TransformerConfig::tiny(first_lowrank);
      c.vocab = 32;
      c.dm = 48;
      c.heads = 4;
      return std::make_unique<models::TransformerMT>(c, rng);
    };
  };

  std::vector<double> v_train, v_val, v_bleu, p_train, p_val, p_bleu;
  int64_t v_params = 0, p_params = 0;
  for (uint64_t seed = 0; seed < 3; ++seed) {
    core::MtTrainConfig cfg;
    cfg.epochs = 32;
    cfg.warmup_epochs = 3;
    cfg.batch = 16;
    cfg.seed = seed;
    core::MtResult rv = core::train_mt(factory(0), nullptr, ds, cfg);
    core::MtResult rp = core::train_mt(factory(0), factory(2), ds, cfg);
    v_train.push_back(rv.train_ppl);
    v_val.push_back(rv.val_ppl);
    v_bleu.push_back(rv.bleu);
    p_train.push_back(rp.train_ppl);
    p_val.push_back(rp.val_ppl);
    p_bleu.push_back(rp.bleu);
    v_params = rv.params;
    p_params = rp.params;
  }

  metrics::Table t(
      {"metric", "vanilla Transformer", "Pufferfish Transformer"});
  t.add_row({"# params", metrics::fmt_int(v_params),
             metrics::fmt_int(p_params)});
  t.add_row({"train ppl", cell(v_train), cell(p_train)});
  t.add_row({"val ppl", cell(v_val), cell(p_val)});
  t.add_row({"val BLEU", cell(v_bleu), cell(p_bleu)});
  t.print();

  std::printf(
      "\nClaim check (paper: Pufferfish val ppl 7.34 vs 11.88 and BLEU "
      "26.87 vs 19.05 -- factorized wins): our factorized model is %.2fx "
      "smaller; val ppl %s vs %s, BLEU %s vs %s.\n",
      static_cast<double>(v_params) / p_params, cell(p_val).c_str(),
      cell(v_val).c_str(), cell(p_bleu).c_str(), cell(v_bleu).c_str());
  return 0;
}
