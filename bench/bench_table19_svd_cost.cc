// Appendix G, Table 19: the one-time SVD cost of the vanilla warm-up
// factorization, measured per model at FULL paper scale.
//
// The paper's point: the truncated SVD runs ONCE per training job and costs
// seconds (2.3 s for ResNet-50 on a V100 box -- 0.17% of one epoch), so
// Pufferfish's "no extra cost" claim survives the factorization step. We
// measure our truncated-SVD (Gram-Jacobi / randomized range-finder) over
// the exact paper architectures on one CPU core.
#include "common.h"

#include "core/factorize.h"

using namespace bench;

namespace {

template <typename Model, typename Cfg>
double measure(const Cfg& vanilla_cfg, const Cfg& hybrid_cfg) {
  Rng rng(1);
  Model vanilla(vanilla_cfg, rng);
  Model hybrid(hybrid_cfg, rng);
  Rng svd_rng(2);
  metrics::Timer t;
  core::warm_start(vanilla, hybrid, svd_rng);
  (void)t;
  return core::last_warm_start_svd_seconds();
}

}  // namespace

int main() {
  banner("Table 19 (appendix G): one-time SVD factorization cost",
         "Pufferfish Table 19",
         "V100 timings -> single CPU core; exact paper-size models");

  metrics::Table t({"model", "SVD time ours (s)", "paper (V100, s)"});

  t.add_row({"VGG-19-BN on CIFAR-10",
             metrics::fmt(measure<models::Vgg19>(
                              models::VggConfig::vanilla(),
                              models::VggConfig::pufferfish(10)),
                          3),
             "1.5198 +- 0.0113"});
  t.add_row({"ResNet-18 on CIFAR-10",
             metrics::fmt(measure<models::ResNet18Cifar>(
                              models::ResNetCifarConfig::vanilla(),
                              models::ResNetCifarConfig::pufferfish()),
                          3),
             "1.3244 +- 0.0201"});
  t.add_row({"ResNet-50 on ImageNet",
             metrics::fmt(measure<models::ResNet50>(
                              models::ResNetImageNetConfig::resnet50_vanilla(),
                              models::ResNetImageNetConfig::resnet50_pufferfish()),
                          3),
             "2.2972 +- 0.0519"});
  t.add_row({"WideResNet-50-2 on ImageNet",
             metrics::fmt(measure<models::ResNet50>(
                              models::ResNetImageNetConfig::wrn50_vanilla(),
                              models::ResNetImageNetConfig::wrn50_pufferfish()),
                          3),
             "4.8700 +- 0.0859"});
  t.add_row({"LSTM on WikiText-2",
             metrics::fmt(measure<models::LstmLm>(
                              models::LstmLmConfig::paper_vanilla(),
                              models::LstmLmConfig::paper_pufferfish()),
                          3),
             "6.5791 +- 0.0445"});
  t.add_row({"Transformer on WMT16",
             metrics::fmt(measure<models::TransformerMT>(
                              models::TransformerConfig::paper_vanilla(),
                              models::TransformerConfig::paper_pufferfish()),
                          3),
             "5.4104 +- 0.0532"});
  t.print();

  std::printf(
      "\nClaim check: the factorization is a one-time cost of seconds to "
      "tens of seconds even on ONE CPU core (the paper's V100 numbers are "
      "~5-15x faster, as expected), i.e. a negligible fraction of any "
      "full training run; the cheap-to-expensive ordering (ResNet-18 < "
      "VGG < ResNet-50 < WRN-50-2 < LSTM) matches the paper.\n");
  return 0;
}
