// Figure 5: Pufferfish vs the Lottery Ticket Hypothesis (iterative
// magnitude pruning with rewinding) on VGG-19 / CIFAR-10:
//  (a) parameters removed vs cumulative wall-clock,
//  (b) parameters removed vs test accuracy.
//
// LTH reaches a given sparsity only after several full train-prune-rewind
// rounds; Pufferfish pays ONE training run (plus one SVD) for its
// compression. Paper: 5.67x less end-to-end time at equal compression.
#include "common.h"

#include "baselines/lth.h"

using namespace bench;

int main() {
  banner("Figure 5: Pufferfish vs LTH (VGG-19, CIFAR-like)",
         "Pufferfish Figure 5 (Section 4.2)",
         "open_lth on GPU -> our LTH (global magnitude prune 50%/round, "
         "rewind) on the width-scaled VGG-19 (single-FC LTH variant)");

  data::SyntheticImages ds = cifar_like();

  // LTH uses the appendix-Table-18 VGG variant (single 512->10 FC head).
  auto lth_factory = [](Rng& rng) -> std::unique_ptr<nn::UnaryModule> {
    models::VggConfig cfg;
    cfg.width_mult = 0.125;
    cfg.lth_classifier = true;
    return std::make_unique<models::Vgg19>(cfg, rng);
  };

  baselines::LthConfig lcfg;
  lcfg.rounds = 3;
  lcfg.prune_frac_per_round = 0.5;
  lcfg.inner = vgg_long_recipe(0);
  auto lth = baselines::run_lth(lth_factory, ds, lcfg);

  // Pufferfish: one run of the same budget on the same backbone.
  metrics::Timer pf_timer;
  auto pf_vanilla = [](Rng& rng) -> std::unique_ptr<nn::UnaryModule> {
    models::VggConfig cfg;
    cfg.width_mult = 0.125;
    cfg.lth_classifier = true;
    return std::make_unique<models::Vgg19>(cfg, rng);
  };
  auto pf_hybrid = [](Rng& rng) -> std::unique_ptr<nn::UnaryModule> {
    models::VggConfig cfg;
    cfg.width_mult = 0.125;
    cfg.lth_classifier = true;
    cfg.k_first_lowrank = 10;
    return std::make_unique<models::Vgg19>(cfg, rng);
  };
  core::VisionResult pf =
      core::train_vision(pf_vanilla, pf_hybrid, ds, vgg_long_recipe());
  const double pf_seconds = pf_timer.seconds();

  Rng rng(1);
  models::VggConfig dense_cfg;
  dense_cfg.width_mult = 0.125;
  dense_cfg.lth_classifier = true;
  models::Vgg19 dense(dense_cfg, rng);
  const int64_t dense_params = dense.num_params();

  metrics::Table t({"method", "# params (effective)", "fraction removed",
                    "test acc (%)", "cumulative time (s)"});
  for (const auto& r : lth)
    t.add_row({"LTH round " + std::to_string(r.round),
               metrics::fmt_int(r.remaining_params),
               metrics::fmt(100.0 * (1.0 - static_cast<double>(r.remaining_params) /
                                               dense_params),
                            1) + "%",
               metrics::fmt(100 * r.test_acc, 2),
               metrics::fmt(r.cumulative_seconds, 1)});
  t.add_row({"Pufferfish (one run)", metrics::fmt_int(pf.params),
             metrics::fmt(100.0 * (1.0 - static_cast<double>(pf.params) /
                                             dense_params),
                          1) + "%",
             metrics::fmt(100 * pf.final_acc, 2),
             metrics::fmt(pf_seconds, 1)});
  t.print();

  // Find the first LTH round whose compression matches Pufferfish's.
  double lth_time_at_match = lth.back().cumulative_seconds;
  for (const auto& r : lth)
    if (r.remaining_params <= pf.params) {
      lth_time_at_match = r.cumulative_seconds;
      break;
    }
  std::printf(
      "\nClaim check (paper: 5.67x more time for LTH at equal compression): "
      "to remove at least as many parameters as Pufferfish, LTH needed "
      "%.1f s vs Pufferfish's %.1f s -> %.2fx.\n",
      lth_time_at_match, pf_seconds, lth_time_at_match / pf_seconds);
  return 0;
}
