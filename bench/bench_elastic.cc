// Elastic heterogeneous clusters: what membership churn actually costs,
// and what the factorized model buys a joiner. Three tables:
// (1) churn recovery -- a worker leaves early and rejoins mid-run; per
//     model arm (vanilla full-rank, hybrid factorized, hybrid + delta
//     bootstrap) we report the joiner's bootstrap payload bytes, the
//     time-to-recover (payload capture + install), and epochs-to-parity
//     against the same arm's static-cluster run. The factorized arms ship
//     strictly fewer bootstrap bytes at no accuracy cost -- the paper's
//     "communication-efficient at no extra cost" claim, extended from
//     per-step gradients to membership events.
// (2) straggler mitigation -- the same cluster under a repeated
//     round-boundary delay, comparing wait-all vs backup-worker vs
//     bounded-staleness wall-clock and payload overheads.
// (3) heterogeneous planning -- per-slot speeds measured by the elastic
//     run feed dist::HardwareProfile::worker_speeds, and plan's modeled
//     epoch seconds show what the slow rank costs at each worker count.
// No paper table corresponds directly; this certifies DESIGN.md section 16.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common.h"
#include "elastic/trainer.h"
#include "plan/planner.h"
#include "runtime/shm_cluster.h"

namespace {

using namespace bench;

bool g_smoke = false;

struct ElasticKnobs {
  int rounds = 10;
  int64_t classes = 10;
  int64_t hw = 16;
  int64_t train = 256, test = 128;
  double width = 0.125;
  int64_t batch = 32;
  double delay_ms = 25.0;
};

ElasticKnobs knobs() {
  ElasticKnobs k;
  if (g_smoke) {
    k.rounds = 4;
    k.classes = 4;
    k.hw = 8;
    k.train = 48;
    k.test = 24;
    k.width = 0.0625;
    k.batch = 16;
    k.delay_ms = 2.0;
  }
  return k;
}

pf::elastic::ElasticConfig base_config(const ElasticKnobs& k) {
  pf::elastic::ElasticConfig cfg;
  cfg.cluster.workers = 4;
  cfg.cluster.bucket_bytes = 64 << 10;
  cfg.cluster.train.epochs = k.rounds;
  cfg.cluster.train.global_batch = k.batch;
  // Decaying once near the end settles the trajectory enough that the
  // parity column measures the churn, not lr-schedule noise.
  cfg.cluster.train.lr = g_smoke ? 0.02f : 0.05f;
  cfg.cluster.train.lr_milestones = {k.rounds - 3};
  cfg.cluster.train.seed = 9;
  return cfg;
}

struct ArmResult {
  std::vector<pf::elastic::RoundReport> rounds;
  pf::elastic::ElasticStats stats;
  std::vector<double> speeds;
  double final_acc = 0;
};

ArmResult run_arm(const pf::data::SyntheticImages& ds, const ElasticKnobs& k,
                  bool factorized, bool churn,
                  pf::elastic::BootstrapMode mode) {
  pf::elastic::ElasticConfig cfg = base_config(k);
  cfg.bootstrap = mode;
  cfg.delta.min_numel = 256;
  if (churn) {
    // Slot 3 drains out after round 0 and rejoins halfway through; the
    // rejoin is the bootstrap event every column below prices.
    cfg.membership = pf::elastic::MembershipPlan(4, 4);
    cfg.membership.leave(3, 1).join(3, k.rounds / 2);
  }
  const int lowrank_from = factorized ? 2 : 0;
  pf::elastic::ElasticTrainer et(
      make_resnet18(k.width, lowrank_from, k.classes), cfg);
  ArmResult r;
  r.rounds = et.train(ds);
  r.stats = et.stats();
  r.speeds = et.measured_speeds();
  r.final_acc = r.rounds.back().record.test_acc;
  return r;
}

// First round at/after the rejoin where the churned run's accuracy is back
// within `tol` of its own static twin's final accuracy; -1 = never.
int epochs_to_parity(const ArmResult& churned, double static_final_acc,
                     int join_round, double tol) {
  for (size_t r = static_cast<size_t>(join_round); r < churned.rounds.size();
       ++r)
    if (churned.rounds[r].record.test_acc >= static_final_acc - tol)
      return static_cast<int>(r) - join_round;
  return -1;
}

void churn_table(const pf::data::SyntheticImages& ds, const ElasticKnobs& k,
                 JsonReport& report, bool want_json) {
  std::printf("\n-- churn recovery: leave(round 1) + rejoin(round %d), "
              "4-slot cluster --\n",
              k.rounds / 2);
  std::printf("%-18s %12s %12s %12s %10s %10s\n", "arm", "boot_bytes",
              "recover_ms", "static_acc", "churn_acc", "parity_ep");
  report.section("churn");
  struct Arm {
    const char* name;
    bool factorized;
    pf::elastic::BootstrapMode mode;
  };
  const Arm arms[] = {
      {"vanilla-exact", false, pf::elastic::BootstrapMode::kExact},
      {"hybrid-exact", true, pf::elastic::BootstrapMode::kExact},
      {"hybrid-delta", true, pf::elastic::BootstrapMode::kDelta},
  };
  for (const Arm& a : arms) {
    const ArmResult fixed = run_arm(ds, k, a.factorized, false, a.mode);
    const ArmResult churn = run_arm(ds, k, a.factorized, true, a.mode);
    const int parity =
        epochs_to_parity(churn, fixed.final_acc, k.rounds / 2, 0.01);
    std::printf("%-18s %12lld %12.2f %12.4f %10.4f %10d\n", a.name,
                static_cast<long long>(churn.stats.bootstrap_bytes),
                churn.stats.recover_s * 1e3, fixed.final_acc,
                churn.final_acc, parity);
    if (want_json) {
      const std::string p(a.name);
      report.kv(p + ".bootstrap_bytes",
                static_cast<double>(churn.stats.bootstrap_bytes));
      report.kv(p + ".static_acc", fixed.final_acc);
      report.kv(p + ".churn_acc", churn.final_acc);
      report.kv(p + ".parity_epochs", parity);
    }
  }
}

void straggler_table(const pf::data::SyntheticImages& ds,
                     const ElasticKnobs& k, JsonReport& report,
                     bool want_json) {
  std::printf("\n-- straggler mitigation: %.0f ms round delay on slot 1, "
              "rounds 1..%d --\n",
              k.delay_ms, k.rounds - 2);
  std::printf("%-18s %10s %8s %10s %12s %10s\n", "strategy", "wall_ms",
              "waited", "mitigated", "resync_B", "final_acc");
  report.section("straggler");
  const pf::elastic::StragglerStrategy strategies[] = {
      pf::elastic::StragglerStrategy::kWaitAll,
      pf::elastic::StragglerStrategy::kBackupWorker,
      pf::elastic::StragglerStrategy::kBoundedStaleness,
  };
  for (pf::elastic::StragglerStrategy s : strategies) {
    pf::elastic::ElasticConfig cfg = base_config(k);
    cfg.straggler = s;
    cfg.staleness_bound = 2;
    // Three live slots + one spare, so backup-worker has headroom.
    cfg.membership = pf::elastic::MembershipPlan(4, 3);
    for (int r = 1; r <= k.rounds - 2; ++r)
      cfg.cluster.fault.delay_worker_round(1, r, k.delay_ms);
    pf::elastic::ElasticTrainer et(make_resnet18(k.width, 2, k.classes),
                                   cfg);
    const auto rounds = et.train(ds);
    double wall = 0;
    for (const pf::elastic::RoundReport& r : rounds)
      wall += r.record.breakdown.wall_s;
    const pf::elastic::ElasticStats& st = et.stats();
    std::printf("%-18s %10.1f %8d %10d %12lld %10.4f\n",
                pf::elastic::to_string(s), wall * 1e3, st.stragglers_waited,
                st.stragglers_mitigated,
                static_cast<long long>(st.resync_bytes),
                rounds.back().record.test_acc);
    if (want_json) {
      const std::string p(pf::elastic::to_string(s));
      report.kv(p + ".waited", st.stragglers_waited);
      report.kv(p + ".mitigated", st.stragglers_mitigated);
      report.kv(p + ".resync_bytes",
                static_cast<double>(st.resync_bytes));
    }
  }
}

void hetero_table(const pf::data::SyntheticImages& ds, const ElasticKnobs& k,
                  JsonReport& report, bool want_json) {
  // One measured elastic run stamps per-slot speeds into the profile ...
  pf::elastic::ElasticConfig cfg = base_config(k);
  cfg.cluster.train.epochs = g_smoke ? 1 : 2;
  pf::elastic::ElasticTrainer et(make_resnet18(k.width, 0, k.classes), cfg);
  et.train(ds);
  const pf::dist::HardwareProfile measured =
      et.speed_profile(pf::dist::HardwareProfile::cloud_10g());

  // ... and the planner prices a nominal (homogeneous) cluster against a
  // degraded one whose 4th rank runs at 40% speed -- the "is the slow node
  // worth keeping" question a real heterogeneous fleet asks. (On this
  // host the measured spread above is scheduler noise, so the table uses a
  // synthetic degradation; the plumbing is identical.)
  const pf::dist::HardwareProfile nominal_hw =
      pf::dist::HardwareProfile::cloud_10g();
  pf::dist::HardwareProfile degraded = nominal_hw;
  degraded.worker_speeds.assign(4, 1.0);
  degraded.worker_speeds[3] = 0.4;
  (void)measured;
  const pf::plan::ModelCosts costs = pf::plan::describe_model(
      "resnet18", k.width, k.classes, k.hw, 1.0, 0);
  const pf::plan::MethodCosts& mc = pf::plan::method_costs("allreduce");
  std::printf("\n-- heterogeneous planning: measured speeds ");
  for (double s : et.measured_speeds()) std::printf("%.3f ", s);
  std::printf("--\n%-8s %14s %14s %8s\n", "workers", "nominal_ep_s",
              "degraded_ep_s", "ratio");
  report.section("hetero");
  for (int workers : {1, 2, 3, 4}) {
    const double nominal = pf::plan::modeled_epoch_seconds(
        costs, mc, workers, 1 << 20, k.batch,
        static_cast<double>(k.train), nominal_hw, false, 0.0);
    const double slow = pf::plan::modeled_epoch_seconds(
        costs, mc, workers, 1 << 20, k.batch,
        static_cast<double>(k.train), degraded, false, 0.0);
    std::printf("%-8d %14.4g %14.4g %8.3f\n", workers, nominal, slow,
                slow / nominal);
    if (want_json)
      report.kv("p" + std::to_string(workers) + ".ratio", slow / nominal);
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) g_smoke = true;
  std::string json_path;
  const bool want_json = JsonReport::wants_json(argc, argv, &json_path);

  banner("Elastic heterogeneous clusters",
         "no paper table -- certifies DESIGN.md section 16 (elastic "
         "membership on the shm executor)",
         "synthetic CIFAR-like data; ResNet-18 at reduced width");

  const ElasticKnobs k = knobs();
  // Noise above the repo default keeps full-scale accuracy off the 1.0
  // ceiling, so the parity column has headroom to mean something.
  auto ds = cifar_like(k.classes, k.hw, k.train, k.test,
                       g_smoke ? 0.35f : 0.6f);

  JsonReport report;
  churn_table(ds, k, report, want_json);
  straggler_table(ds, k, report, want_json);
  hetero_table(ds, k, report, want_json);
  if (want_json) report.emit("bench_elastic", json_path);
  return 0;
}
