// Adaptive-rank frontier: communication bytes vs final accuracy for the
// adaptive-rank training additions (extends Table 20's trade-off study).
//
// Four arms on the ResNet-18-class CIFAR-like setup of Figure 4(b), all on
// the modeled 8-node cluster with REAL gradients and REAL payload bytes:
//  (a) vanilla SGD + dense allreduce            -- accuracy ceiling, most bytes
//  (b) fixed-rank Pufferfish (warm-up + SVD)    -- the paper's recipe
//  (c) Pufferfish, variance-gated warm-up       -- VarianceGateReducer trims
//      the dense phase; skipped layers ride the error-feedback residual
//  (d) Pufferfish + AB-style re-projection      -- every R low-rank epochs a
//      full-rank refresh round, then re-SVD with policy-chosen ranks
//
// The bytes axis is cumulative per-worker payload over the WHOLE run
// (dist::DataParallelTrainer::cumulative_bytes_per_worker), so warm-up
// savings and refresh-round costs both land in the frontier. The acceptance
// claim: at least one adaptive arm strictly dominates fixed-rank Pufferfish
// (fewer bytes at equal-or-better accuracy).
//
// --smoke shrinks every knob for the CI target (pf_bench_adaptive_smoke);
// --json[=path] appends the machine-readable report.
#include "common.h"

#include <cstring>

#include "compress/variance_gate.h"
#include "core/factorize.h"
#include "core/rank_policy.h"
#include "dist/cluster.h"
#include "nn/reproject.h"

using namespace bench;

namespace {

bool g_smoke = false;

struct ArmSpec {
  std::string name;
  bool hybrid = false;         // switch to the low-rank model after warm-up
  bool variance_gate = false;  // gate the warm-up phase's transmissions
  double vg_threshold = 0;
  int reproject_every = 0;  // R > 0: refresh round every R low-rank epochs
};

struct ArmResult {
  std::string name;
  double final_acc = 0;
  int64_t bytes = 0;  // cumulative per-worker payload, full run
  int64_t layers_sent = -1, layers_skipped = -1;  // variance-gate arms only
  int refreshes = 0;
  std::vector<dist::DistEpochRecord> records;
};

ArmResult run_arm(const ArmSpec& spec, const core::VisionModelFactory& vf,
                  const core::VisionModelFactory& hf,
                  const data::SyntheticImages& ds, dist::CostModel cm,
                  const dist::DistTrainConfig& cfg, int warmup_epochs,
                  const core::RankPolicy& policy) {
  Rng rng(13);
  std::unique_ptr<compress::Reducer> warm_reducer;
  if (spec.variance_gate)
    warm_reducer = std::make_unique<compress::VarianceGateReducer>(
        spec.vg_threshold, /*warmup_steps=*/4);
  else
    warm_reducer = std::make_unique<compress::AllreduceReducer>();
  dist::DataParallelTrainer trainer(vf(rng), std::move(warm_reducer), cm,
                                    cfg);
  ArmResult out;
  out.name = spec.name;
  for (int e = 0; e < cfg.epochs; ++e) {
    if (spec.hybrid && e == warmup_epochs) {
      // Freeze the gate counters before the reducer is swapped out.
      if (auto* vg = dynamic_cast<compress::VarianceGateReducer*>(
              trainer.reducer())) {
        out.layers_sent = vg->layers_sent();
        out.layers_skipped = vg->layers_skipped();
      }
      std::unique_ptr<nn::UnaryModule> hybrid = hf(rng);
      Rng svd_rng(17);
      core::warm_start(trainer.model(), *hybrid, svd_rng);
      trainer.replace_model(std::move(hybrid),
                            std::make_unique<compress::AllreduceReducer>());
    }
    const bool refresh = spec.reproject_every > 0 && spec.hybrid &&
                         e > warmup_epochs &&
                         (e - warmup_epochs) % spec.reproject_every == 0;
    if (refresh) {
      // AB refresh round: densify and train this epoch at full rank (its
      // dense allreduce payload lands in the bytes axis)...
      std::unique_ptr<nn::UnaryModule> vanilla = vf(rng);
      nn::defactorize(trainer.model(), *vanilla);
      trainer.replace_model(std::move(vanilla), nullptr);
      ++out.refreshes;
    }
    out.records.push_back(trainer.train_epoch(ds, e));
    if (refresh) {
      // ...then re-SVD back to low rank with policy-chosen per-layer ranks.
      std::unique_ptr<nn::UnaryModule> hybrid = hf(rng);
      Rng svd_rng(static_cast<uint64_t>(17 + e));
      nn::reproject(trainer.model(), *hybrid, policy, svd_rng);
      trainer.replace_model(std::move(hybrid), nullptr);
    }
  }
  out.final_acc = out.records.back().test_acc;
  out.bytes = trainer.cumulative_bytes_per_worker();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) g_smoke = true;
  std::string json_path;
  const bool want_json = JsonReport::wants_json(argc, argv, &json_path);

  banner("Adaptive-rank frontier: bytes vs accuracy",
         "extends Pufferfish Table 20 with adaptive-rank arms",
         "8-node alpha-beta simulator, real grads/payloads; variance-gated "
         "warm-up (Tsuzuku et al.) and AB-style re-projection rounds");

  const int64_t classes = g_smoke ? 4 : 10;
  data::SyntheticImages ds = g_smoke ? cifar_like(classes, 8, 48, 24)
                                     : cifar_like(classes, 16, 192, 96);
  const double width = g_smoke ? 0.0625 : 0.125;
  const int warmup = g_smoke ? 1 : 2;
  const int reproject_every = 2;

  dist::CostModel cm;
  cm.nodes = 8;
  dist::DistTrainConfig cfg;
  cfg.epochs = g_smoke ? 4 : 8;
  cfg.global_batch = g_smoke ? 32 : 64;
  // The smoke-width model diverges under the large-batch lr ramp; give it
  // the plain small recipe instead.
  cfg.lr = g_smoke ? 0.02f : 0.08f;
  cfg.lr_warmup_epochs = g_smoke ? 0 : 2;
  cfg.lr_warmup_start = 0.02f;
  cfg.lr_milestones = {g_smoke ? 3 : 6};

  const core::VisionModelFactory vf = make_resnet18(width, 0, classes);
  const core::VisionModelFactory hf = make_resnet18(width, 2, classes);
  // Re-projection re-picks each layer's rank from the trained dense
  // weights' spectrum; min_rank keeps degenerate layers trainable.
  const core::RankPolicy policy =
      core::RankPolicy::ab_reproject(0.9, reproject_every, 2);

  const std::vector<ArmSpec> specs = {
      {"vanilla SGD", false, false, 0, 0},
      {"Pufferfish (fixed rank)", true, false, 0, 0},
      {"Pufferfish (variance-gated warm-up)", true, true, 1.5, 0},
      {"Pufferfish (AB re-projection R=2)", true, false, 0, reproject_every},
  };
  std::vector<ArmResult> arms;
  for (const ArmSpec& s : specs)
    arms.push_back(run_arm(s, vf, hf, ds, cm, cfg, warmup, policy));

  const ArmResult& fixed = arms[1];
  metrics::Table t({"arm", "final acc (%)", "bytes/worker (total)",
                    "vs fixed rank", "gate sent/skipped", "refreshes"});
  for (const ArmResult& a : arms) {
    std::string gate = "-";
    if (a.layers_sent >= 0)
      gate = std::to_string(a.layers_sent) + "/" +
             std::to_string(a.layers_skipped);
    t.add_row({a.name, metrics::fmt(100 * a.final_acc, 1),
               metrics::fmt_bytes(a.bytes),
               metrics::fmt_ratio(static_cast<double>(a.bytes) /
                                  static_cast<double>(fixed.bytes)),
               gate, std::to_string(a.refreshes)});
  }
  t.print();

  // The acceptance check: an adaptive arm (c or d) strictly dominates the
  // fixed-rank recipe when it ships fewer bytes at >= its accuracy.
  bool dominated = false;
  for (size_t i = 2; i < arms.size(); ++i)
    if (arms[i].bytes < fixed.bytes && arms[i].final_acc >= fixed.final_acc)
      dominated = true;
  std::printf(
      "claim: variance gating trims the dense warm-up phase (error feedback "
      "defers, not drops, the skipped mass) and re-projection pays dense "
      "refresh rounds back through re-tuned ranks; adaptive dominates fixed "
      "rank here: %s\n",
      dominated ? "yes" : "no");

  if (want_json) {
    JsonReport rep;
    for (const ArmResult& a : arms) {
      rep.section(a.name);
      rep.kv("final_acc", a.final_acc);
      rep.kv("bytes_per_worker", static_cast<double>(a.bytes));
      rep.kv("refreshes", a.refreshes);
      if (a.layers_sent >= 0) {
        rep.kv("gate_layers_sent", static_cast<double>(a.layers_sent));
        rep.kv("gate_layers_skipped",
               static_cast<double>(a.layers_skipped));
      }
    }
    rep.section("frontier");
    rep.kv("adaptive_dominates_fixed", dominated ? "yes" : "no");
    rep.emit("bench_adaptive_frontier", json_path);
  }
  return 0;
}
