// Ablation: is the closed-form alpha-beta cost model (which prices all of
// Figure 4's communication) faithful to the actual ring schedule?
//
// We validate the closed form against a discrete-event simulation of the
// ring collectives (reduce-scatter + allgather rounds over point-to-point
// links), then show the one regime the closed form cannot express: a
// straggler link, which serializes the whole ring -- and note that
// Pufferfish's smaller gradients shrink straggler damage proportionally.
#include "common.h"

#include "dist/cost_model.h"
#include "dist/ring_sim.h"

using namespace bench;

int main() {
  banner("Ablation: closed-form cost model vs discrete-event ring simulation",
         "Pufferfish Section 4.1 communication accounting (Thakur et al.)",
         "none -- two independent models of the same collective");

  std::printf("(a) closed form vs event simulation, homogeneous 10 Gbps "
              "links:\n");
  {
    metrics::Table t({"nodes", "bytes", "closed form (ms)",
                      "event sim (ms)", "diff"});
    for (int p : {2, 4, 8, 16}) {
      for (int64_t bytes : {int64_t{1} << 20, int64_t{97} << 20}) {
        dist::CostModel cm;
        cm.nodes = p;
        const double closed = cm.allreduce_seconds(bytes, 1);
        const dist::RingSimResult sim =
            dist::simulate_ring_allreduce(bytes, p, {dist::RingLink{}});
        t.add_row({std::to_string(p), metrics::fmt_bytes(bytes),
                   metrics::fmt(1e3 * closed, 3),
                   metrics::fmt(1e3 * sim.makespan_s, 3),
                   metrics::fmt(100.0 * std::abs(sim.makespan_s - closed) /
                                    closed,
                                2) + "%"});
      }
    }
    t.print();
    std::printf("claim: the closed form used throughout Figure 4 agrees "
                "with the event-level schedule to <2%%.\n\n");
  }

  std::printf("(b) the straggler regime (one link at half bandwidth), "
              "16 nodes, full-size ResNet-50 gradients:\n");
  {
    Rng rng(1);
    models::ResNet50 rv(models::ResNetImageNetConfig::resnet50_vanilla(),
                        rng);
    models::ResNet50 rp(models::ResNetImageNetConfig::resnet50_pufferfish(),
                        rng);
    const int p = 16;
    std::vector<dist::RingLink> slow(static_cast<size_t>(p));
    slow[5].bandwidth_bytes_per_s /= 2;

    metrics::Table t({"model", "healthy ring (ms)", "straggler ring (ms)",
                      "slowdown"});
    for (const auto& [name, bytes] :
         {std::pair<const char*, int64_t>{"vanilla ResNet-50",
                                          rv.num_params() * 4},
          std::pair<const char*, int64_t>{"Pufferfish ResNet-50",
                                          rp.num_params() * 4}}) {
      const double healthy =
          dist::simulate_ring_allreduce(bytes, p, {dist::RingLink{}})
              .makespan_s;
      const double degraded =
          dist::simulate_ring_allreduce_pipelined(bytes, p, slow).makespan_s;
      t.add_row({name, metrics::fmt(1e3 * healthy, 2),
                 metrics::fmt(1e3 * degraded, 2),
                 metrics::fmt_ratio(degraded / healthy)});
    }
    t.print();
    std::printf(
        "claim: a straggler multiplies ring time for BOTH models (the ring "
        "serializes through it; pipelining cannot help -- verified by the "
        "event sim), but Pufferfish's absolute penalty is 1.68x smaller "
        "because its gradients are.\n");
  }
  return 0;
}
