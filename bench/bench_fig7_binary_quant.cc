// Appendix F, Figure 7: why "computationally cheap" gradient quantization
// is slow in practice -- stochastic binary quantization (Suresh et al.) on
// a 16-node cluster.
//
// The paper measures compression at 12.1 s vs DECOMPRESSION at 118.4 s per
// epoch at 16 nodes: the encoding is not allreduce-compatible, so every
// worker allgathers and dequantizes 15 peers' payloads -- decode cost scales
// linearly with the cluster. We reproduce the breakdown and the scaling law.
#include "common.h"

#include "dist/cluster.h"

using namespace bench;

int main() {
  banner("Figure 7 (appendix F): stochastic binary quantization breakdown",
         "Pufferfish Figure 7 + appendix F",
         "ResNet-50/ImageNet, 16 nodes -> scaled model, synthetic task");

  data::SyntheticImages ds = imagenet_like(128, 64);
  dist::DistTrainConfig cfg;
  cfg.epochs = 1;
  cfg.global_batch = 64;
  cfg.lr = 0.05f;

  std::printf("per-epoch breakdown at 16 nodes:\n");
  {
    dist::CostModel cm;
    cm.nodes = 16;
    struct Arm {
      std::string name;
      bool pufferfish;
      std::unique_ptr<compress::Reducer> reducer;
    };
    std::vector<Arm> arms;
    arms.push_back({"vanilla SGD", false,
                    std::make_unique<compress::AllreduceReducer>()});
    arms.push_back({"Pufferfish", true,
                    std::make_unique<compress::AllreduceReducer>()});
    arms.push_back({"binary quantization", false,
                    std::make_unique<compress::BinaryQuantReducer>(7)});
    metrics::Table t({"method", "comp (s)", "encode (s)", "comm (s)",
                      "decode (s)", "epoch total (s)"});
    double decode_binary = 0, encode_binary = 0;
    for (Arm& arm : arms) {
      Rng rng(37);
      dist::DataParallelTrainer trainer(
          make_resnet50(0.125, arm.pufferfish)(rng), std::move(arm.reducer),
          cm, cfg);
      dist::DistEpochRecord rec = trainer.train_epoch(ds, 0);
      const dist::EpochBreakdown& b = rec.breakdown;
      if (arm.name == "binary quantization") {
        decode_binary = b.decode_s;
        encode_binary = b.encode_s;
      }
      t.add_row({arm.name, metrics::fmt(b.compute_s, 3),
                 metrics::fmt(b.encode_s, 3), metrics::fmt(b.comm_s, 3),
                 metrics::fmt(b.decode_s, 3), metrics::fmt(b.total(), 3)});
    }
    t.print();
    std::printf("paper: compress 12.1 s vs decompress 118.4 s (~10x); ours: "
                "decode/encode = %.1fx\n\n",
                decode_binary / std::max(1e-9, encode_binary));
  }

  std::printf("decode cost vs cluster size (the allgather pathology):\n");
  {
    metrics::Table t({"nodes", "decode (s)", "decode per node (s)"});
    double first_decode = 0, last_decode = 0;
    for (int nodes : {2, 4, 8, 16}) {
      dist::CostModel cm;
      cm.nodes = nodes;
      Rng rng(41);
      dist::DataParallelTrainer trainer(
          make_resnet50(0.125, false)(rng),
          std::make_unique<compress::BinaryQuantReducer>(11), cm, cfg);
      dist::DistEpochRecord rec = trainer.train_epoch(ds, 0);
      if (nodes == 2) first_decode = rec.breakdown.decode_s;
      last_decode = rec.breakdown.decode_s;
      t.add_row({std::to_string(nodes),
                 metrics::fmt(rec.breakdown.decode_s, 3),
                 metrics::fmt(rec.breakdown.decode_s / nodes, 4)});
    }
    t.print();
    std::printf(
        "claim: per-worker decode time grows ~linearly with cluster size "
        "(each worker dequantizes every peer); 2 -> 16 nodes grew decode "
        "%.1fx here (linear would be 8x). Pufferfish sidesteps the whole "
        "encode/decode stage.\n",
        last_decode / std::max(1e-9, first_decode));
  }
  return 0;
}
