// Ablation (beyond the paper's tables): the global rank-ratio knob.
//
// The paper fixes rank ratio = 0.25 everywhere and cites per-layer rank
// allocation as future work. This bench (a) sweeps the global ratio on the
// scaled ResNet-18 to chart the params-vs-accuracy tradeoff around the
// paper's operating point, and (b) reports what fraction of spectral energy
// ratio 0.25 actually retains on warm-up-trained weights, next to the rank
// an energy-90% policy would pick (core::choose_rank_for_energy).
#include "common.h"

#include "core/factorize.h"
#include "optim/optim.h"

using namespace bench;

int main() {
  banner("Ablation: global rank-ratio sweep + energy-based allocation",
         "Pufferfish Section 4.1 (rank-ratio 0.25 choice) + future-work "
         "rank allocation",
         "scaled ResNet-18 on the CIFAR-like task");

  data::SyntheticImages ds = cifar_like(10, 16, 200, 100);

  std::printf("(a) global rank-ratio sweep (hybrid + warm-up, 2 seeds):\n");
  {
    metrics::Table t({"rank ratio", "# params", "vs vanilla",
                      "test acc (%)"});
    Rng ref_rng(1);
    models::ResNetCifarConfig vcfg;
    vcfg.width_mult = 0.125;
    models::ResNet18Cifar vanilla_model(vcfg, ref_rng);
    const int64_t vanilla_params = vanilla_model.num_params();

    for (double ratio : {0.0625, 0.125, 0.25, 0.5}) {
      auto hybrid = [ratio](Rng& rng) -> std::unique_ptr<nn::UnaryModule> {
        models::ResNetCifarConfig cfg =
            models::ResNetCifarConfig::pufferfish();
        cfg.width_mult = 0.125;
        cfg.rank_ratio = ratio;
        return std::make_unique<models::ResNet18Cifar>(cfg, rng);
      };
      std::vector<double> accs;
      int64_t params = 0;
      for (uint64_t seed = 0; seed < 2; ++seed) {
        core::VisionResult r = core::train_vision(
            make_resnet18(0.125, 0), hybrid, ds, resnet_recipe(8, 2, seed));
        accs.push_back(100 * r.final_acc);
        params = r.params;
      }
      t.add_row({metrics::fmt(ratio, 4), metrics::fmt_int(params),
                 metrics::fmt(100.0 * params / vanilla_params, 1) + "%",
                 cell(accs)});
    }
    // Vanilla reference row.
    std::vector<double> vaccs;
    for (uint64_t seed = 0; seed < 2; ++seed) {
      core::VisionResult r = core::train_vision(
          make_resnet18(0.125, 0), nullptr, ds, resnet_recipe(8, 2, seed));
      vaccs.push_back(100 * r.final_acc);
    }
    t.add_row({"vanilla", metrics::fmt_int(vanilla_params), "100.0%",
               cell(vaccs)});
    t.print();
    std::printf("claim: accuracy saturates near the paper's 0.25 while "
                "params keep shrinking below it -- 0.25 is a knee point.\n\n");
  }

  std::printf("(b) what the fixed ratio keeps, layer by layer (warm-up "
              "trained weights):\n");
  {
    // Train the vanilla model briefly, then inspect each factorizable
    // conv's spectrum.
    Rng rng(5);
    models::ResNetCifarConfig cfg;
    cfg.width_mult = 0.125;
    models::ResNet18Cifar model(cfg, rng);
    optim::SGD opt(model.parameters(), 0.05f, 0.9f, 1e-4f);
    for (int epoch = 0; epoch < 2; ++epoch)
      for (const data::ImageBatch& b : ds.train_batches(32, epoch)) {
        model.zero_grad();
        ag::Var loss =
            ag::cross_entropy(model.forward(ag::leaf(b.images)), b.labels);
        ag::backward(loss);
        opt.step();
      }

    metrics::Table t({"layer (unrolled shape)", "ratio-0.25 rank",
                      "energy kept by 0.25", "rank for 90% energy"});
    int shown = 0;
    std::function<void(nn::Module&)> walk = [&](nn::Module& m) {
      if (m.type_name() == "Conv2d" && shown < 6) {
        auto& conv = static_cast<nn::Conv2d&>(m);
        const int64_t c_in = conv.c_in(), c_out = conv.c_out(),
                      k = conv.kernel();
        if (c_out < 8) return;
        // Unroll like factorize_conv does.
        Tensor unrolled(Shape{c_in * k * k, c_out});
        const Tensor& w = conv.weight->value;
        for (int64_t co = 0; co < c_out; ++co)
          for (int64_t ci = 0; ci < c_in; ++ci)
            for (int64_t ky = 0; ky < k; ++ky)
              for (int64_t kx = 0; kx < k; ++kx)
                unrolled[((ci * k + ky) * k + kx) * c_out + co] =
                    w[((co * c_in + ci) * k + ky) * k + kx];
        const int64_t r25 =
            models::pufferfish_rank(c_in, c_out, k, 0.25);
        const double kept = core::retained_energy(unrolled, r25);
        const int64_t r90 = core::choose_rank_for_energy(unrolled, 0.9);
        t.add_row({"conv " + std::to_string(c_in * k * k) + "x" +
                       std::to_string(c_out),
                   std::to_string(r25), metrics::fmt(100 * kept, 1) + "%",
                   std::to_string(r90)});
        ++shown;
      }
      for (nn::Module* c : m.children()) walk(*c);
    };
    walk(model);
    t.print();
    std::printf(
        "observation: early in training the spectra are still flat, so a "
        "fixed ratio keeps well under 90%% energy -- per-layer allocation "
        "(the paper's cited future work) would spend rank where the energy "
        "is. The utilities above make that policy implementable.\n");
  }
  return 0;
}
