// Appendix E, Figure 6: combining Pufferfish with PowerSGD.
//
// Pufferfish shrinks the model; PowerSGD then compresses the (already
// smaller) gradient further. The paper runs "Pufferfish + PowerSGD rank 4"
// with lr re-warm-up at the model switch and finds it matches PowerSGD's
// communication while keeping Pufferfish's cheap compute -- at the price of
// extra encode/decode on every (U, V) layer pair.
#include "common.h"

#include "core/factorize.h"
#include "dist/cluster.h"

using namespace bench;

int main() {
  banner("Figure 6 (appendix E): Pufferfish + PowerSGD",
         "Pufferfish Figure 6",
         "ResNet-18/CIFAR-10, 8 nodes -> scaled model on CIFAR-like task");

  data::SyntheticImages ds = cifar_like(10, 16, 192, 96);
  dist::CostModel cm;
  cm.nodes = 8;
  dist::DistTrainConfig cfg;
  cfg.epochs = 9;
  cfg.global_batch = 64;
  cfg.lr = 0.08f;
  cfg.lr_warmup_epochs = 2;  // the large-batch lr re-warm-up recipe
  cfg.lr_warmup_start = 0.02f;
  cfg.lr_milestones = {7};
  const int kSwitch = 2;

  struct Arm {
    std::string name;
    bool pufferfish;
    std::function<std::unique_ptr<compress::Reducer>()> reducer;
  };
  const std::vector<Arm> arms = {
      {"vanilla SGD", false,
       [] { return std::make_unique<compress::AllreduceReducer>(); }},
      {"Pufferfish", true,
       [] { return std::make_unique<compress::AllreduceReducer>(); }},
      {"PowerSGD (rank 2)", false,
       [] { return std::make_unique<compress::PowerSgdReducer>(2, 5); }},
      {"Pufferfish + PowerSGD (rank 4)", true,
       [] { return std::make_unique<compress::PowerSgdReducer>(4, 5); }},
      {"SIGNUM", false,
       [] { return std::make_unique<compress::SignumReducer>(); }},
  };

  metrics::Table bt({"method", "comp (s)", "encode (s)", "comm (s)",
                     "decode (s)", "epoch total (s)", "payload/worker",
                     "final acc (%)"});
  for (const Arm& arm : arms) {
    dist::DistTrainConfig acfg = cfg;
    if (arm.name == "SIGNUM") {
      acfg.lr = 0.008f;
      acfg.momentum = 0.0f;
      acfg.lr_warmup_start = 0.002f;
    }
    Rng rng(29);
    dist::DataParallelTrainer trainer(make_resnet18(0.125, 0)(rng),
                                      arm.reducer(), cm, acfg);
    dist::DistEpochRecord last;
    for (int e = 0; e < acfg.epochs; ++e) {
      if (arm.pufferfish && e == kSwitch) {
        std::unique_ptr<nn::UnaryModule> hybrid =
            make_resnet18(0.125, 2)(rng);
        Rng svd_rng(31);
        core::warm_start(trainer.model(), *hybrid, svd_rng);
        trainer.replace_model(std::move(hybrid), arm.reducer());
      }
      last = trainer.train_epoch(ds, e);
    }
    const dist::EpochBreakdown& b = last.breakdown;
    bt.add_row({arm.name, metrics::fmt(b.compute_s, 3),
                metrics::fmt(b.encode_s, 3), metrics::fmt(b.comm_s, 3),
                metrics::fmt(b.decode_s, 3), metrics::fmt(b.total(), 3),
                metrics::fmt_bytes(b.bytes_per_worker),
                metrics::fmt(100 * last.test_acc, 1)});
  }
  bt.print();

  std::printf(
      "\nClaim checks (paper appendix E): (i) Pufferfish+PowerSGD has the "
      "smallest payload of the Pufferfish arms -- gradients of the smaller "
      "model compressed again; (ii) its encode/decode exceeds plain "
      "PowerSGD's because BOTH U and V layers are encoded per block; "
      "(iii) the combination keeps Pufferfish's reduced compute.\n");
  return 0;
}
