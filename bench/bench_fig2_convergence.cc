// Figure 2: convergence of vanilla vs fully-low-rank models (every layer
// except the first conv and last FC factorized at rank ratio 0.25, trained
// from scratch) -- (a) VGG-class model on CIFAR-10, (b) ResNet-50 on
// ImageNet.
//
// The paper's point: the from-scratch low-rank network converges to a
// visibly lower test accuracy, motivating the hybrid + warm-up mitigations.
// We print the per-epoch test-accuracy series for both arms on both tasks.
#include "common.h"

using namespace bench;

namespace {

void print_series(const std::string& title, const core::VisionResult& vanilla,
                  const core::VisionResult& lowrank) {
  std::printf("%s\n", title.c_str());
  metrics::Table t({"epoch", "vanilla acc (%)", "low-rank acc (%)"});
  for (size_t e = 0; e < vanilla.epochs.size(); ++e)
    t.add_row({std::to_string(e),
               metrics::fmt(100 * vanilla.epochs[e].test_acc, 1),
               metrics::fmt(100 * lowrank.epochs[e].test_acc, 1)});
  t.print();
  std::printf("final: vanilla %.2f%% (%s params) vs low-rank %.2f%% (%s "
              "params)\n\n",
              100 * vanilla.final_acc,
              metrics::fmt_int(vanilla.params).c_str(),
              100 * lowrank.final_acc,
              metrics::fmt_int(lowrank.params).c_str());
}

}  // namespace

int main() {
  banner("Figure 2: vanilla vs from-scratch low-rank convergence",
         "Pufferfish Figure 2 (Section 3)",
         "CIFAR-10/ImageNet -> synthetic tasks; width-scaled models; rank "
         "ratio 0.25 everywhere but first conv / last FC");

  {
    // (a) VGG-11 on the CIFAR-like task, exactly the paper's Figure 2(a)
    // model: low-rank from scratch (K = 2: every conv after the first one
    // factorized; hidden FCs factorized, classifier FC kept).
    data::SyntheticImages ds = cifar_like();
    core::VisionTrainConfig cfg = vgg_recipe();
    cfg.warmup_epochs = 0;  // from-scratch arms in both cases
    auto vgg11 = [](int k) {
      return [k](Rng& rng) -> std::unique_ptr<nn::UnaryModule> {
        models::VggConfig c = models::VggConfig::vgg11(k);
        c.width_mult = 0.125;
        return std::make_unique<models::Vgg19>(c, rng);
      };
    };
    core::VisionResult vanilla =
        core::train_vision(vgg11(0), nullptr, ds, cfg);
    core::VisionResult lowrank =
        core::train_vision(vgg11(0), vgg11(2), ds, cfg);
    print_series("(a) VGG-11 on CIFAR-like (paper: ~0.4% final-acc gap)",
                 vanilla, lowrank);
  }
  {
    // (b) ResNet-50 on the ImageNet-like task (paper: ~3% top-1 gap --
    // larger task, larger gap).
    data::SyntheticImages ds = imagenet_like(160, 80);
    core::VisionTrainConfig cfg = imagenet_recipe(9, 0);
    core::VisionResult vanilla = core::train_vision(
        make_resnet50(0.125, false), nullptr, ds, cfg);
    // Fully factorized ResNet-50: every stage low-rank, from scratch.
    auto lowrank_factory = [](Rng& rng) -> std::unique_ptr<nn::UnaryModule> {
      models::ResNetImageNetConfig mc;
      mc.width_mult = 0.125;
      mc.num_classes = 20;
      mc.factorize_stage4 = true;
      mc.input_hw = 32;
      return std::make_unique<models::ResNet50>(mc, rng);
    };
    core::VisionResult lowrank = core::train_vision(
        make_resnet50(0.125, false), lowrank_factory, ds, cfg);
    print_series("(b) ResNet-50 on ImageNet-like (paper: ~3% top-1 gap)",
                 vanilla, lowrank);
  }
  std::printf(
      "Claim check: the from-scratch low-rank curve should trail the "
      "vanilla curve, and the gap motivates hybrid + warm-up (Figure 3 / "
      "Tables 8-9).\n");
  return 0;
}
