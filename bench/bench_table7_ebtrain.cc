// Table 7: Pufferfish hybrid vs Early-Bird Ticket structured pruning
// (EB Train) at prune ratios 30/50/70% -- params, top-1/top-5, MACs.
//
// The paper runs this on ResNet-50/ImageNet with EB numbers taken from You
// et al.; channel pruning composes cleanly with plain conv-BN chains, so our
// scaled reproduction uses VGG-19 on the ImageNet-like task (see DESIGN.md)
// and checks the *shape*: EB models get smaller as pr grows but lose
// accuracy, while Pufferfish sits at comparable size with better accuracy.
#include "common.h"

#include "baselines/eb_train.h"

using namespace bench;

int main() {
  banner("Table 7: Pufferfish vs EB Train (structured pruning)",
         "Pufferfish Table 7 (Section 4.2)",
         "ResNet-50/ImageNet -> width-scaled VGG-19 on synthetic 20-class "
         "task; EB rebuild -> soft pruning + effective-slim-network "
         "accounting");

  std::printf("Paper-scale reference rows (ImageNet, from the paper):\n");
  {
    metrics::Table t({"model", "# params", "top-1", "top-5", "MACs G"});
    t.add_row({"vanilla ResNet-50", "25,610,205", "75.99%", "92.98%", "4.12"});
    t.add_row({"Pufferfish ResNet-50", "15,202,344", "75.62%", "92.55%",
               "3.6"});
    t.add_row({"EB Train (pr=30%)", "16,466,787", "73.86%", "91.52%", "2.8"});
    t.add_row({"EB Train (pr=50%)", "15,081,947", "73.35%", "91.36%", "2.37"});
    t.add_row({"EB Train (pr=70%)", "7,882,503", "70.16%", "89.55%", "1.03"});
    t.print();
  }

  std::printf("\nOur scaled reproduction (VGG-19 width 0.125, 20-class "
              "synthetic task, same epoch budget per arm):\n\n");

  data::SyntheticImages ds = cifar_like(20, 32, 160, 80, 0.35f, 23);
  const int kEpochs = 22;

  models::VggConfig mcfg;
  mcfg.width_mult = 0.125;
  mcfg.num_classes = 20;

  metrics::Table t({"model", "# params", "top-1 (%)", "top-5 (%)",
                    "fwd MACs (M)"});

  // Vanilla and Pufferfish arms share the EB recipe (paper: same
  // hyper-parameters as EB Train, no label smoothing, step decay).
  {
    core::VisionTrainConfig cfg = vgg_long_recipe();
    core::VisionResult rv = core::train_vision(
        make_vgg(0.125, 0, 20), nullptr, ds, cfg);
    Rng rng(1);
    models::Vgg19 vm(mcfg, rng);
    t.add_row({"vanilla VGG-19", metrics::fmt_int(rv.params),
               metrics::fmt(100 * rv.final_acc, 2),
               metrics::fmt(100 * rv.final_top5, 2),
               metrics::fmt(vm.forward_macs(32, 32) / 1e6, 1)});

    core::VisionResult rp = core::train_vision(
        make_vgg(0.125, 0, 20), make_vgg(0.125, 10, 20), ds,
        vgg_long_recipe());
    models::VggConfig pcfg = mcfg;
    pcfg.k_first_lowrank = 10;
    models::Vgg19 pm(pcfg, rng);
    t.add_row({"Pufferfish VGG-19", metrics::fmt_int(rp.params),
               metrics::fmt(100 * rp.final_acc, 2),
               metrics::fmt(100 * rp.final_top5, 2),
               metrics::fmt(pm.forward_macs(32, 32) / 1e6, 1)});
  }

  for (double pr : {0.3, 0.5, 0.7}) {
    baselines::EbConfig cfg;
    cfg.prune_ratio = pr;
    cfg.max_search_epochs = 4;
    cfg.inner = vgg_long_recipe(0);
    (void)kEpochs;
    baselines::EbResult r = baselines::run_eb_train(mcfg, ds, cfg);
    t.add_row({"EB Train (pr=" + metrics::fmt(100 * pr, 0) + "%)",
               metrics::fmt_int(r.effective_params),
               metrics::fmt(100 * r.test_acc, 2),
               metrics::fmt(100 * r.test_top5, 2),
               metrics::fmt(r.effective_macs / 1e6, 1)});
  }
  t.print();

  std::printf(
      "\nClaim check (paper: Pufferfish has 1.3M fewer params than EB "
      "pr=30%% yet 1.76%% higher top-1): in our reproduction Pufferfish "
      "should match or beat the EB arms' accuracy at a comparable or "
      "smaller size, with EB accuracy degrading as pr grows.\n");
  return 0;
}
